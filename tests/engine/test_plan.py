"""Tests for workload planning: validation, dedup, source grouping."""

import numpy as np
import pytest

from repro.engine.plan import BatchQuery, as_query, plan_queries


class TestAsQuery:
    def test_tuple_coerces(self):
        assert as_query((1, 2, 3)) == BatchQuery(1, 2, 3)

    def test_batch_query_passes_through(self):
        query = BatchQuery(0, 1, 10)
        assert as_query(query) is query

    def test_numpy_integers_coerce(self):
        query = as_query((np.int64(1), np.int64(2), np.int64(3)))
        assert query == BatchQuery(1, 2, 3)
        assert all(isinstance(part, int) for part in query[:3])
        assert query.max_hops is None

    def test_four_tuple_carries_hop_bound(self):
        query = as_query((1, 2, 3, np.int64(4)))
        assert query == BatchQuery(1, 2, 3, 4)
        assert isinstance(query.max_hops, int)

    def test_explicit_none_hop_bound(self):
        assert as_query((1, 2, 3, None)) == BatchQuery(1, 2, 3, None)

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError, match="source, target, samples"):
            as_query((1, 2, 3, 4, 5))
        with pytest.raises(ValueError):
            as_query((1, 2))


class TestPlanQueries:
    def test_empty_workload_is_valid(self, diamond_graph):
        plan = plan_queries(diamond_graph, [])
        assert len(plan) == 0
        assert plan.unique_count == 0
        assert plan.k_max == 0
        assert plan.groups == ()
        assert plan.scatter(np.empty(0)).shape == (0,)

    def test_duplicates_collapse(self, diamond_graph):
        plan = plan_queries(
            diamond_graph, [(0, 3, 100), (0, 3, 100), (1, 3, 50)]
        )
        assert plan.unique_count == 2
        assert len(plan) == 3
        assert plan.assignment == (0, 0, 1)

    def test_same_pair_different_k_stays_distinct(self, diamond_graph):
        plan = plan_queries(diamond_graph, [(0, 3, 100), (0, 3, 200)])
        assert plan.unique_count == 2

    def test_scatter_restores_original_order(self, diamond_graph):
        plan = plan_queries(
            diamond_graph, [(0, 3, 10), (1, 3, 10), (0, 3, 10)]
        )
        values = np.asarray([0.25, 0.75])
        assert plan.scatter(values).tolist() == [0.25, 0.75, 0.25]

    def test_groups_share_source(self, diamond_graph):
        plan = plan_queries(
            diamond_graph, [(0, 3, 100), (0, 1, 60), (2, 3, 40)]
        )
        assert len(plan.groups) == 2
        by_source = {group.source: group for group in plan.groups}
        assert by_source[0].targets.tolist() == [3, 1]
        assert by_source[0].samples.tolist() == [100, 60]
        assert by_source[0].k_max == 100
        assert by_source[2].k_max == 40
        assert plan.k_max == 100

    def test_invalid_node_rejected(self, diamond_graph):
        with pytest.raises(Exception):
            plan_queries(diamond_graph, [(0, 99, 10)])

    def test_nonpositive_samples_rejected(self, diamond_graph):
        with pytest.raises(Exception):
            plan_queries(diamond_graph, [(0, 3, 0)])
