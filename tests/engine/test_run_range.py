"""Tests for :meth:`BatchEngine.run_range` — the shard-tier primitive.

The distributed tier is only correct if evaluating a partition of the
world range ``[0, K)`` piecewise and summing the integer hit counts is
bit-identical to one process sweeping the whole range.  These tests pin
that property directly at the engine layer, including the awkward
cases: partitions that do not align with ``chunk_size``, hop-bounded
and duplicated queries, empty ranges, and ranges beyond every budget.
"""

import numpy as np
import pytest

from repro.engine.batch import BatchEngine, RangeResult

from tests.conftest import random_graph

WORKLOAD = [
    (0, 3, 400),
    (0, 5, 400),
    (1, 4, 250),
    (2, 6, 300),
    (0, 3, 400),  # duplicate on purpose
    (0, 7, 220, 2),  # hop-bounded
]


@pytest.fixture(scope="module")
def graph():
    return random_graph(seed=11, node_count=12, edge_probability=0.25)


def merged_estimates(graph, splits, **engine_options):
    """Sum per-range hits over ``splits`` and divide by the budgets."""
    engine = BatchEngine(graph, seed=5, **engine_options)
    hits = np.zeros(len(WORKLOAD), dtype=np.int64)
    sweeps = 0
    for start, stop in splits:
        part = engine.run_range(WORKLOAD, start, stop)
        assert isinstance(part, RangeResult)
        assert len(part) == len(WORKLOAD)
        assert part.fingerprint == engine.fingerprint
        hits += part.hits
        sweeps += part.sweeps
    budgets = np.asarray([q[2] for q in WORKLOAD], dtype=np.int64)
    return hits / budgets, sweeps


class TestPartitionSumEqualsFullRun:
    def test_chunk_aligned_partition_is_bit_identical(self, graph):
        engine = BatchEngine(graph, seed=5, chunk_size=64)
        full = engine.run(WORKLOAD)
        estimates, sweeps = merged_estimates(
            graph, [(0, 192), (192, 320), (320, 400)], chunk_size=64
        )
        np.testing.assert_array_equal(estimates, full.estimates)
        assert sweeps == full.sweeps

    def test_unaligned_partition_still_merges_exactly(self, graph):
        # Cut points that ignore chunk boundaries change the sweep
        # bookkeeping but never the integer hit counts.
        full = BatchEngine(graph, seed=5).run(WORKLOAD)
        estimates, _ = merged_estimates(
            graph, [(0, 7), (7, 130), (130, 131), (131, 400)]
        )
        np.testing.assert_array_equal(estimates, full.estimates)

    def test_single_range_covers_everything(self, graph):
        full = BatchEngine(graph, seed=5).run(WORKLOAD)
        estimates, sweeps = merged_estimates(graph, [(0, 400)])
        np.testing.assert_array_equal(estimates, full.estimates)
        assert sweeps == full.sweeps

    @pytest.mark.parametrize("kernels", ["vectorized", "python"])
    def test_kernel_modes_agree(self, graph, kernels):
        full = BatchEngine(graph, seed=5, kernels=kernels).run(WORKLOAD)
        estimates, _ = merged_estimates(
            graph, [(0, 100), (100, 400)], kernels=kernels
        )
        np.testing.assert_array_equal(estimates, full.estimates)

    def test_per_world_sweep_agrees(self, graph):
        full = BatchEngine(graph, seed=5, sweep="per_world").run(WORKLOAD)
        estimates, _ = merged_estimates(
            graph, [(0, 100), (100, 400)], sweep="per_world"
        )
        np.testing.assert_array_equal(estimates, full.estimates)


class TestRangeSemantics:
    def test_empty_range_evaluates_nothing(self, graph):
        part = BatchEngine(graph, seed=5).run_range(WORKLOAD, 100, 100)
        assert part.worlds_evaluated == 0
        assert part.sweeps == 0
        assert (part.hits == 0).all()

    def test_range_beyond_every_budget_is_clipped(self, graph):
        engine = BatchEngine(graph, seed=5)
        clipped = engine.run_range(WORKLOAD, 400, 900)
        assert clipped.worlds_evaluated == 0
        assert (clipped.hits == 0).all()
        partial = engine.run_range(WORKLOAD, 300, 900)
        assert partial.worlds_evaluated == 100

    def test_duplicate_queries_get_identical_hits(self, graph):
        part = BatchEngine(graph, seed=5).run_range(WORKLOAD, 0, 250)
        assert part.hits[0] == part.hits[4]

    def test_hits_are_int64_and_bounded_by_range(self, graph):
        part = BatchEngine(graph, seed=5).run_range(WORKLOAD, 50, 150)
        assert part.hits.dtype == np.int64
        assert (part.hits >= 0).all()
        assert (part.hits <= 100).all()

    def test_result_echoes_provenance(self, graph):
        engine = BatchEngine(graph, seed=9)
        part = engine.run_range(WORKLOAD, 10, 20)
        assert part.start == 10
        assert part.stop == 20
        assert part.seed == 9
        assert part.fingerprint == engine.fingerprint

    def test_negative_or_inverted_range_rejected(self, graph):
        engine = BatchEngine(graph, seed=5)
        with pytest.raises(ValueError, match="world range"):
            engine.run_range(WORKLOAD, -1, 10)
        with pytest.raises(ValueError, match="world range"):
            engine.run_range(WORKLOAD, 10, 5)

    def test_range_results_never_touch_the_cache(self, graph):
        engine = BatchEngine(graph, seed=5)
        engine.run_range(WORKLOAD, 0, 400)
        assert len(engine.cache) == 0
        # And a warm cache is not consulted: partial counts must be
        # recomputed, not served from full-range estimates.
        engine.run(WORKLOAD)
        part = BatchEngine(graph, seed=5).run_range(WORKLOAD, 0, 100)
        again = engine.run_range(WORKLOAD, 0, 100)
        np.testing.assert_array_equal(part.hits, again.hits)
