"""Kernel conformance suite: vectorized sweeps vs the reference loops.

The vectorized kernels of :mod:`repro.engine.kernels` claim *bit
identity* with the per-node Python kernels they replace — the monotone
fixpoint has one solution whatever the evaluation schedule, and
reachability in a materialised world is a fact, not an estimate.  This
suite pins the claim over hypothesis-generated graphs (including
self-loops, which the graph constructor drops; disconnected nodes; hop
bounds; and empty worlds where no edge exists), then re-asserts it at
engine level for both sweep strategies and at service level for every
engine-backed estimator path.

Derandomized like the oracle-conformance suite: a failure is a bug,
never a coin flip.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.estimators.bfs_sharing import shared_reachability_fixpoint
from repro.core.graph import UncertainGraph
from repro.core.possible_world import ReachabilitySampler, forced_from_mask
from repro.engine.batch import BatchEngine
from repro.engine.kernels import (
    KERNEL_MODES,
    KERNELS_ENV_VAR,
    reach_targets_in_world,
    resolve_kernels,
    shared_fixpoint_vectorized,
)
from repro.util import bitset
from tests.conftest import random_graph, small_graph_parts

CONFORMANCE_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Hop bounds swept per example: None is the unbounded fixpoint, 0 is the
#: degenerate "source only" indicator, the rest exercise the
#: level-synchronous mode including bounds beyond the graph's diameter.
HOP_BOUNDS = (None, 0, 1, 2, 9)


def build(parts) -> UncertainGraph:
    node_count, edges = parts
    return UncertainGraph(node_count, edges)


class TestResolveKernels:
    def test_explicit_value_wins(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV_VAR, "python")
        assert resolve_kernels("vectorized") == "vectorized"

    def test_env_var_supplies_default(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV_VAR, "vectorized")
        assert resolve_kernels(None) == "vectorized"

    def test_default_is_python(self, monkeypatch):
        monkeypatch.delenv(KERNELS_ENV_VAR, raising=False)
        assert resolve_kernels(None) == "python"

    @pytest.mark.parametrize("bogus", ["simd", "PYTHON", ""])
    def test_unknown_mode_rejected(self, bogus):
        with pytest.raises(ValueError, match="unknown kernel mode"):
            resolve_kernels(bogus)

    def test_modes_cover_both_kernels(self):
        assert KERNEL_MODES == ("python", "vectorized")


class TestSharedFixpointConformance:
    """``shared_fixpoint_vectorized`` vs ``shared_reachability_fixpoint``."""

    @CONFORMANCE_SETTINGS
    @given(parts=small_graph_parts, seed=st.integers(0, 2**16))
    def test_node_bits_bit_identical(self, parts, seed):
        graph = build(parts)
        rng = np.random.default_rng(seed)
        bit_count = int(rng.integers(1, 130))  # spans 1..3 packed words
        edge_bits = bitset.sample_bit_matrix(graph.probs, bit_count, rng)
        for source in range(graph.node_count):
            for max_hops in HOP_BOUNDS:
                reference, ref_probed = shared_reachability_fixpoint(
                    graph, edge_bits, source, bit_count, max_hops=max_hops
                )
                vectorized, vec_probed = shared_fixpoint_vectorized(
                    graph, edge_bits, source, bit_count, max_hops=max_hops
                )
                np.testing.assert_array_equal(vectorized, reference)
                if max_hops is not None:
                    # Level-synchronous rounds visit identical frontiers,
                    # so even the probe *instrumentation* matches.  The
                    # unbounded worklist's probe count is a property of
                    # its schedule — the one permitted divergence.
                    assert vec_probed == ref_probed

    def test_empty_world_reaches_only_source(self):
        # All-zero edge bits: in every world no edge exists, so the
        # fixpoint must leave every non-source row empty.
        graph = random_graph(seed=3, node_count=6, edge_probability=0.5)
        bit_count = 64
        edge_bits = bitset.zeros(graph.edge_count, bit_count)
        node_bits, _ = shared_fixpoint_vectorized(graph, edge_bits, 0, bit_count)
        reference, _ = shared_reachability_fixpoint(graph, edge_bits, 0, bit_count)
        np.testing.assert_array_equal(node_bits, reference)
        assert bitset.popcount_rows(node_bits)[1:].sum() == 0

    def test_word_count_mismatch_rejected(self):
        graph = random_graph(seed=3, node_count=4, edge_probability=0.9)
        edge_bits = bitset.zeros(graph.edge_count, 64)
        with pytest.raises(ValueError, match="words"):
            shared_fixpoint_vectorized(graph, edge_bits, 0, 65)


class TestReachTargetsConformance:
    """``reach_targets_in_world`` vs the sampler's forced-world sweep."""

    @CONFORMANCE_SETTINGS
    @given(parts=small_graph_parts, seed=st.integers(0, 2**16))
    def test_indicators_bit_identical(self, parts, seed):
        graph = build(parts)
        rng = np.random.default_rng(seed)
        mask = rng.random(graph.edge_count) < graph.probs
        forced = forced_from_mask(mask)
        sampler = ReachabilitySampler(graph)
        targets = np.arange(graph.node_count, dtype=np.int64)
        for source in range(graph.node_count):
            for max_hops in HOP_BOUNDS:
                reference = sampler.reach_targets(
                    source, targets, rng=None, forced=forced, max_hops=max_hops
                )
                vectorized = reach_targets_in_world(
                    graph, mask, source, targets, max_hops=max_hops
                )
                np.testing.assert_array_equal(vectorized, reference)

    def test_empty_world_reaches_only_source(self):
        graph = random_graph(seed=7, node_count=6, edge_probability=0.5)
        mask = np.zeros(graph.edge_count, dtype=bool)
        targets = np.arange(graph.node_count, dtype=np.int64)
        reached = reach_targets_in_world(graph, mask, 2, targets)
        expected = np.zeros(graph.node_count, dtype=bool)
        expected[2] = True
        np.testing.assert_array_equal(reached, expected)


#: Mixed workload shared by the engine-level tests: duplicates, shared
#: sources, distinct budgets, and d-hop twins (as in test_parallel).
WORKLOAD = [
    (0, 3, 400),
    (0, 5, 400),
    (1, 4, 250),
    (2, 6, 300),
    (0, 3, 400),
    (5, 2, 150),
    (0, 3, 400, 2),
    (1, 4, 250, 3),
]


@pytest.fixture(scope="module")
def graph():
    return random_graph(seed=11, node_count=12, edge_probability=0.25)


class TestEngineKernelConformance:
    @pytest.mark.parametrize("sweep", ["bitset", "per_world"])
    def test_vectorized_equals_python_exactly(self, graph, sweep):
        python = BatchEngine(
            graph, seed=5, chunk_size=64, sweep=sweep, kernels="python"
        ).run(WORKLOAD)
        vectorized = BatchEngine(
            graph, seed=5, chunk_size=64, sweep=sweep, kernels="vectorized"
        ).run(WORKLOAD)
        np.testing.assert_array_equal(vectorized.estimates, python.estimates)
        assert vectorized.worlds_sampled == python.worlds_sampled
        assert vectorized.sweeps == python.sweeps

    def test_vectorized_agrees_with_sequential_oracle(self, graph):
        vectorized = BatchEngine(
            graph, seed=9, chunk_size=32, kernels="vectorized"
        ).run(WORKLOAD)
        oracle = BatchEngine(graph, seed=9).run_sequential(WORKLOAD)
        np.testing.assert_array_equal(vectorized.estimates, oracle.estimates)

    def test_vectorized_parallel_equals_serial(self, graph):
        serial = BatchEngine(
            graph, seed=5, chunk_size=64, kernels="vectorized"
        ).run(WORKLOAD)
        parallel = BatchEngine(
            graph, seed=5, chunk_size=64, kernels="vectorized", workers=2
        ).run(WORKLOAD)
        np.testing.assert_array_equal(serial.estimates, parallel.estimates)

    def test_env_var_routes_engine(self, graph, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV_VAR, "vectorized")
        engine = BatchEngine(graph, seed=5)
        assert engine.kernels == "vectorized"
        monkeypatch.delenv(KERNELS_ENV_VAR)
        assert BatchEngine(graph, seed=5).kernels == "python"

    def test_unknown_mode_rejected_at_construction(self, graph):
        with pytest.raises(ValueError, match="unknown kernel mode"):
            BatchEngine(graph, seed=5, kernels="simd")
