"""Tests for the LRU result cache and graph fingerprinting."""

from repro.core.graph import UncertainGraph
from repro.engine.cache import (
    UNBOUNDED_HOPS,
    ResultCache,
    graph_fingerprint,
    result_key,
)


class TestGraphFingerprint:
    def test_identical_graphs_share_fingerprint(self):
        edges = [(0, 1, 0.5), (1, 2, 0.25)]
        a = UncertainGraph(3, edges)
        b = UncertainGraph(3, edges)
        assert graph_fingerprint(a) == graph_fingerprint(b)

    def test_probability_change_changes_fingerprint(self):
        a = UncertainGraph(3, [(0, 1, 0.5), (1, 2, 0.25)])
        b = UncertainGraph(3, [(0, 1, 0.5), (1, 2, 0.26)])
        assert graph_fingerprint(a) != graph_fingerprint(b)

    def test_structure_change_changes_fingerprint(self):
        a = UncertainGraph(3, [(0, 1, 0.5)])
        b = UncertainGraph(3, [(0, 2, 0.5)])
        assert graph_fingerprint(a) != graph_fingerprint(b)

    def test_fingerprint_is_memoised(self):
        graph = UncertainGraph(3, [(0, 1, 0.5)])
        assert graph_fingerprint(graph) is graph_fingerprint(graph)

    def test_in_place_mutation_invalidates_the_memo(self):
        # Regression: the memo used to be a bare attribute stamped once,
        # so a graph whose probabilities changed in place kept serving
        # its *old* digest — silently aliasing cache entries across
        # versions.  The memo is version-aware now.
        from repro.core.mutation import set_edge_probability

        graph = UncertainGraph(3, [(0, 1, 0.5), (1, 2, 0.25)])
        before = graph_fingerprint(graph)
        set_edge_probability(graph, 0, 1, 0.75)
        after = graph_fingerprint(graph)
        assert before != after
        # And the new digest matches a fresh graph with the new edges.
        fresh = UncertainGraph(3, [(0, 1, 0.75), (1, 2, 0.25)])
        assert after == graph_fingerprint(fresh)

    def test_successor_graph_gets_its_own_fingerprint(self):
        from repro.core.mutation import apply_update

        graph = UncertainGraph(3, [(0, 1, 0.5), (1, 2, 0.25)])
        before = graph_fingerprint(graph)
        mutation = apply_update(graph, set_edges=[(0, 1, 0.9)])
        assert graph_fingerprint(mutation.graph) != before
        # The predecessor is untouched: same digest, memo still valid.
        assert graph_fingerprint(graph) is before


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache(capacity=4)
        key = result_key("fp", 0, 1, 100, 7)
        assert cache.get(key) is None
        cache.put(key, 0.5)
        assert cache.get(key) == 0.5
        assert cache.hits == 1
        assert cache.misses == 1

    def test_distinct_seeds_do_not_collide(self):
        cache = ResultCache(capacity=4)
        cache.put(result_key("fp", 0, 1, 100, 7), 0.5)
        assert cache.get(result_key("fp", 0, 1, 100, 8)) is None

    def test_hop_bounds_partition_keys(self):
        # The d-hop indicator is a different random variable over the same
        # worlds: (s, t, K, seed) must never alias across max_hops values.
        unbounded = result_key("fp", 0, 1, 100, 7)
        hop2 = result_key("fp", 0, 1, 100, 7, max_hops=2)
        hop3 = result_key("fp", 0, 1, 100, 7, max_hops=3)
        assert len({unbounded, hop2, hop3}) == 3
        assert unbounded[-1] == UNBOUNDED_HOPS

    def test_default_hop_encoding_matches_explicit_none(self):
        assert result_key("fp", 0, 1, 100, 7) == result_key(
            "fp", 0, 1, 100, 7, max_hops=None
        )

    def test_cache_never_serves_across_hop_bounds(self):
        cache = ResultCache(capacity=8)
        cache.put(result_key("fp", 0, 1, 100, 7), 0.5)
        cache.put(result_key("fp", 0, 1, 100, 7, max_hops=2), 0.25)
        assert cache.get(result_key("fp", 0, 1, 100, 7, max_hops=3)) is None
        assert cache.get(result_key("fp", 0, 1, 100, 7, max_hops=2)) == 0.25
        assert cache.get(result_key("fp", 0, 1, 100, 7)) == 0.5

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        first = result_key("fp", 0, 1, 10, 0)
        second = result_key("fp", 0, 2, 10, 0)
        third = result_key("fp", 0, 3, 10, 0)
        cache.put(first, 0.1)
        cache.put(second, 0.2)
        assert cache.get(first) == 0.1  # promote `first`
        cache.put(third, 0.3)  # evicts `second`, the LRU entry
        assert second not in cache
        assert first in cache and third in cache
        assert len(cache) == 2

    def test_statistics_shape(self):
        cache = ResultCache(capacity=3)
        cache.put(result_key("fp", 0, 1, 10, 0), 0.1)
        cache.get(result_key("fp", 0, 1, 10, 0))
        stats = cache.statistics()
        assert stats == {"size": 1, "capacity": 3, "hits": 1, "misses": 0}

    def test_clear(self):
        cache = ResultCache(capacity=3)
        cache.put(result_key("fp", 0, 1, 10, 0), 0.1)
        cache.clear()
        assert len(cache) == 0

    def test_put_many_equals_individual_puts(self):
        batched = ResultCache(capacity=8)
        looped = ResultCache(capacity=8)
        items = [
            (result_key("fp", 0, target, 10, 0), target / 10.0)
            for target in range(5)
        ]
        batched.put_many(items)
        for key, value in items:
            looped.put(key, value)
        for key, value in items:
            assert batched.get(key) == value
        assert len(batched) == len(looped)

    def test_put_many_respects_capacity(self):
        cache = ResultCache(capacity=3)
        cache.put_many(
            (result_key("fp", 0, target, 10, 0), 0.5) for target in range(9)
        )
        assert len(cache) == 3


class TestThreadSafety:
    """The cache is shared by one engine per concurrently served request."""

    def test_concurrent_gets_and_puts_stay_consistent(self):
        import threading

        cache = ResultCache(capacity=64)
        keys = [result_key("fp", 0, target, 100, 7) for target in range(32)]
        errors = []

        def hammer(worker: int) -> None:
            try:
                for round_number in range(300):
                    key = keys[(worker + round_number) % len(keys)]
                    value = cache.get(key)
                    # Exactness: a present value is always the right one.
                    if value is not None and value != key[2] / 32.0:
                        errors.append((key, value))
                    cache.put(key, key[2] / 32.0)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(worker,))
            for worker in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 64
        stats = cache.statistics()
        assert stats["hits"] + stats["misses"] == 8 * 300

    def test_concurrent_eviction_pressure_keeps_the_bound(self):
        import threading

        cache = ResultCache(capacity=4)  # far below the working set
        errors = []

        def writer(worker: int) -> None:
            try:
                for round_number in range(200):
                    key = result_key("fp", worker, round_number, 10, 0)
                    cache.put(key, 0.5)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=writer, args=(worker,))
            for worker in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 4
