"""Tests for the persistent result cache: the SQLite sidecar.

The sidecar is an accelerator, never a correctness dependency, so the
failure modes matter as much as the happy path: a corrupted file must be
quarantined (not crash the run), a re-fingerprinted graph must never be
served stale rows, concurrent readers must all see committed results, and
hop bounds must partition keys on disk exactly as they do in memory.
"""

import sqlite3
import threading

import numpy as np
import pytest

from repro.core.graph import UncertainGraph
from repro.engine.batch import BatchEngine
from repro.engine.cache import (
    RESULT_CACHE_FILENAME,
    PersistentResultCache,
    graph_fingerprint,
    open_result_cache,
    result_key,
)


@pytest.fixture
def cache_dir(tmp_path):
    return tmp_path / "cache"


def sidecar_of(cache_dir):
    return cache_dir / RESULT_CACHE_FILENAME


class TestRoundTrip:
    def test_survives_the_instance(self, cache_dir):
        key = result_key("fp", 0, 1, 100, 7)
        first = open_result_cache(cache_dir)
        first.put(key, 0.5)
        first.close()
        second = open_result_cache(cache_dir)
        assert second.get(key) == 0.5
        assert second.disk_hits == 1

    def test_disk_hit_promotes_into_memory(self, cache_dir):
        key = result_key("fp", 0, 1, 100, 7)
        writer = open_result_cache(cache_dir)
        writer.put(key, 0.25)
        writer.close()
        reader = open_result_cache(cache_dir)
        assert reader.get(key) == 0.25
        assert reader.get(key) == 0.25  # now a pure memory hit
        assert reader.disk_hits == 1
        assert reader.hits == 2

    def test_huge_unsigned_seeds_round_trip(self, cache_dir):
        # Engine seeds span the full uint64 range, which SQLite's signed
        # INTEGER cannot hold — seeds are stored as TEXT.
        key = result_key("fp", 0, 1, 100, 2**64 - 1)
        writer = open_result_cache(cache_dir)
        writer.put(key, 0.125)
        writer.close()
        assert open_result_cache(cache_dir).get(key) == 0.125

    def test_statistics_extend_the_base_counters(self, cache_dir):
        cache = open_result_cache(cache_dir)
        cache.put(result_key("fp", 0, 1, 10, 0), 0.1)
        stats = cache.statistics()
        assert stats["disk_size"] == 1
        assert stats["persistent"] is True
        assert {"size", "capacity", "hits", "misses"} <= set(stats)


class TestCorruptedSidecar:
    def test_garbage_file_is_quarantined_not_fatal(self, cache_dir):
        cache_dir.mkdir(parents=True)
        sidecar_of(cache_dir).write_bytes(b"this is not a sqlite file" * 64)
        cache = open_result_cache(cache_dir)
        assert not cache.disabled
        key = result_key("fp", 0, 1, 100, 7)
        assert cache.get(key) is None
        cache.put(key, 0.5)
        assert cache.get(key) == 0.5
        assert sidecar_of(cache_dir).with_suffix(".corrupt").exists()

    def test_fresh_sidecar_persists_after_quarantine(self, cache_dir):
        cache_dir.mkdir(parents=True)
        sidecar_of(cache_dir).write_bytes(b"\x00" * 512)
        key = result_key("fp", 0, 1, 100, 7)
        first = open_result_cache(cache_dir)
        first.put(key, 0.75)
        first.close()
        assert open_result_cache(cache_dir).get(key) == 0.75

    def test_runtime_sqlite_failure_degrades_to_memory(self, cache_dir):
        cache = open_result_cache(cache_dir)
        key = result_key("fp", 0, 1, 100, 7)
        cache.put(key, 0.5)
        # Yank the connection out from under the cache: subsequent disk
        # operations fail, persistence turns off, memory keeps serving.
        cache._connection.close()
        other = result_key("fp", 0, 2, 100, 7)
        cache.put(other, 0.25)
        assert cache.disabled
        assert cache.get(key) == 0.5
        assert cache.get(other) == 0.25


class TestFingerprintIsolation:
    def test_mutated_graph_never_served_stale_rows(self, tmp_path):
        cache_dir = tmp_path / "cache"
        original = UncertainGraph(3, [(0, 1, 0.5), (1, 2, 0.25)])
        mutated = UncertainGraph(3, [(0, 1, 0.5), (1, 2, 0.26)])
        assert graph_fingerprint(original) != graph_fingerprint(mutated)

        first = BatchEngine(original, seed=0, cache_dir=str(cache_dir))
        warm = BatchEngine(original, seed=0, cache_dir=str(cache_dir))
        cold = BatchEngine(mutated, seed=0, cache_dir=str(cache_dir))
        workload = [(0, 2, 150)]
        first.run(workload)
        assert warm.run(workload).worlds_sampled == 0
        mutated_result = cold.run(workload)
        assert mutated_result.worlds_sampled == 150
        assert mutated_result.cache_hits == 0

    def test_distinct_fingerprints_coexist_in_one_sidecar(self, cache_dir):
        cache = open_result_cache(cache_dir)
        cache.put(result_key("fp-a", 0, 1, 100, 7), 0.5)
        cache.put(result_key("fp-b", 0, 1, 100, 7), 0.75)
        cache.close()
        reopened = open_result_cache(cache_dir)
        assert reopened.get(result_key("fp-a", 0, 1, 100, 7)) == 0.5
        assert reopened.get(result_key("fp-b", 0, 1, 100, 7)) == 0.75


class TestUpdateLifecycle:
    """The sidecar across a live service update (the PR 7 tentpole)."""

    def test_pre_update_entries_survive_and_new_keys_miss_then_fill(
        self, tmp_path
    ):
        from repro.api import (
            BatchRequest,
            ReliabilityService,
            UpdateRequest,
            coerce_query_specs,
        )

        cache_dir = str(tmp_path / "cache")
        graph = UncertainGraph(
            4, [(0, 1, 0.8), (1, 2, 0.7), (2, 3, 0.6), (0, 2, 0.5)]
        )
        request = BatchRequest(queries=coerce_query_specs([[0, 3, 150]]))
        with ReliabilityService(
            graph, seed=5, cache_dir=cache_dir
        ) as service:
            service.estimate_batch(request)
            disk_before = service.stats()["cache"]["disk_size"]
            service.update(UpdateRequest(set_edges=((1, 2, 0.9),)))
            # Post-update, the same request misses (new fingerprint)
            # and then fills the sidecar with new-version rows...
            cold = service.estimate_batch(request)
            assert cold.engine.cache_hits == 0
            assert cold.engine.cache_misses == 1
            assert service.stats()["cache"]["disk_size"] == disk_before + 1
            warm = service.estimate_batch(request)
            assert warm.engine.worlds_sampled == 0

        # ...and both versions' rows are durable across a restart: a new
        # service over the *original* graph warm-starts from the
        # pre-update entries, untouched by the update.
        with ReliabilityService(
            graph, seed=5, cache_dir=cache_dir
        ) as service:
            replay = service.estimate_batch(request)
            assert replay.engine.cache_hits == 1
            assert replay.engine.worlds_sampled == 0


class TestHopBoundIsolation:
    def test_hop_bounds_partition_disk_keys(self, cache_dir):
        writer = open_result_cache(cache_dir)
        writer.put(result_key("fp", 0, 1, 100, 7), 0.5)
        writer.put(result_key("fp", 0, 1, 100, 7, max_hops=2), 0.25)
        writer.close()
        reader = open_result_cache(cache_dir)
        assert reader.get(result_key("fp", 0, 1, 100, 7, max_hops=3)) is None
        assert reader.get(result_key("fp", 0, 1, 100, 7, max_hops=2)) == 0.25
        assert reader.get(result_key("fp", 0, 1, 100, 7)) == 0.5

    def test_engine_dhop_rerun_warm_starts_without_aliasing(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        graph = UncertainGraph(4, [(0, 1, 0.8), (1, 2, 0.8), (2, 3, 0.8)])
        bounded = [(0, 3, 120, 2)]
        unbounded = [(0, 3, 120)]
        first = BatchEngine(graph, seed=0, cache_dir=cache_dir)
        first.run(bounded)
        # The unbounded query must not be served the 2-hop number.
        second = BatchEngine(graph, seed=0, cache_dir=cache_dir)
        cold = second.run(unbounded)
        assert cold.cache_hits == 0
        third = BatchEngine(graph, seed=0, cache_dir=cache_dir)
        assert third.run(bounded).worlds_sampled == 0


class TestConcurrentReaders:
    def test_many_connections_read_committed_results(self, cache_dir):
        keys = [result_key("fp", 0, t, 100, 7) for t in range(16)]
        writer = open_result_cache(cache_dir)
        for offset, key in enumerate(keys):
            writer.put(key, offset / 16.0)
        writer.close()

        failures = []

        def reader() -> None:
            try:
                cache = open_result_cache(cache_dir)
                for offset, key in enumerate(keys):
                    value = cache.get(key)
                    if value != offset / 16.0:
                        failures.append((key, value))
                cache.close()
            except sqlite3.Error as error:  # pragma: no cover
                failures.append(error)

        threads = [threading.Thread(target=reader) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures

    def test_interleaved_writers_serialise_on_the_file_lock(self, cache_dir):
        a = open_result_cache(cache_dir)
        b = open_result_cache(cache_dir)
        a.put(result_key("fp", 0, 1, 100, 7), 0.5)
        b.put(result_key("fp", 0, 2, 100, 7), 0.25)
        assert a.get(result_key("fp", 0, 2, 100, 7)) == 0.25
        assert b.get(result_key("fp", 0, 1, 100, 7)) == 0.5


class TestDiskEviction:
    def test_disk_capacity_bounds_the_table(self, cache_dir):
        cache = PersistentResultCache(
            sidecar_of(cache_dir), capacity=64, disk_capacity=4
        )
        for target in range(10):
            cache.put(result_key("fp", 0, target, 100, 7), target / 10.0)
        assert cache._disk_size() <= 4

    def test_replacing_puts_do_not_trigger_spurious_eviction(self, cache_dir):
        # The row bound overcounts REPLACEs; the resync on overflow must
        # recognise that the table never actually grew.
        cache = PersistentResultCache(
            sidecar_of(cache_dir), capacity=64, disk_capacity=4
        )
        key = result_key("fp", 0, 1, 100, 7)
        for round_number in range(20):
            cache.put(key, round_number / 20.0)
        assert cache._disk_size() == 1

    def test_row_bound_survives_reopen(self, cache_dir):
        first = PersistentResultCache(
            sidecar_of(cache_dir), capacity=64, disk_capacity=8
        )
        for target in range(5):
            first.put(result_key("fp", 0, target, 100, 7), 0.5)
        first.close()
        second = PersistentResultCache(
            sidecar_of(cache_dir), capacity=64, disk_capacity=8
        )
        assert second._row_bound == 5

    def test_least_recently_touched_rows_evicted_first(self, cache_dir):
        cache = PersistentResultCache(
            sidecar_of(cache_dir), capacity=64, disk_capacity=3
        )
        keys = [result_key("fp", 0, t, 100, 7) for t in range(3)]
        for offset, key in enumerate(keys):
            cache.put(key, offset / 4.0)
        cache.close()
        # A *disk* read refreshes recency (memory-layer hits do not, by
        # design — the hot path stays write-free).
        toucher = PersistentResultCache(
            sidecar_of(cache_dir), capacity=64, disk_capacity=3
        )
        assert toucher.get(keys[0]) == 0.0  # disk hit bumps keys[0]
        toucher.put(result_key("fp", 0, 99, 100, 7), 0.99)  # evicts keys[1]
        toucher.close()
        survivor = open_result_cache(cache_dir)
        assert survivor.get(keys[0]) == 0.0
        assert survivor.get(keys[1]) is None


class TestEngineIntegration:
    def test_second_engine_samples_zero_worlds(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        graph = UncertainGraph(4, [(0, 1, 0.8), (1, 2, 0.8), (2, 3, 0.8)])
        workload = [(0, 3, 200), (0, 2, 150)]
        cold = BatchEngine(graph, seed=3, cache_dir=cache_dir).run(workload)
        assert cold.worlds_sampled == 200
        warm_engine = BatchEngine(graph, seed=3, cache_dir=cache_dir)
        warm = warm_engine.run(workload)
        assert warm.worlds_sampled == 0
        assert warm.cache_hits == len(workload)
        np.testing.assert_array_equal(cold.estimates, warm.estimates)

    def test_explicit_cache_wins_over_cache_dir(self, tmp_path):
        from repro.engine.cache import ResultCache

        graph = UncertainGraph(3, [(0, 1, 0.5), (1, 2, 0.5)])
        cache = ResultCache(8)
        engine = BatchEngine(
            graph, seed=0, cache=cache, cache_dir=str(tmp_path / "cache")
        )
        assert engine.cache is cache
        assert not (tmp_path / "cache").exists()


class CountingConnection:
    """Delegating proxy that counts commits (sqlite3 methods are C-locked)."""

    def __init__(self, connection):
        self._inner = connection
        self.commits = 0

    def commit(self):
        self.commits += 1
        return self._inner.commit()

    def __getattr__(self, name):
        return getattr(self._inner, name)


def counting(cache) -> CountingConnection:
    proxy = CountingConnection(cache._connection)
    cache._connection = proxy
    return proxy


class TestBatchedWrites:
    def test_put_many_commits_once(self, cache_dir):
        cache = open_result_cache(cache_dir)
        connection = counting(cache)
        cache.put_many(
            (result_key("fp", 0, target, 100, 7), target / 32.0)
            for target in range(32)
        )
        assert connection.commits == 1
        assert cache._disk_size() == 32
        cache.close()
        reopened = open_result_cache(cache_dir)
        for target in range(32):
            assert (
                reopened.get(result_key("fp", 0, target, 100, 7))
                == target / 32.0
            )

    def test_individual_puts_still_commit_each(self, cache_dir):
        # Durability contract: a crash after put() loses nothing.
        cache = open_result_cache(cache_dir)
        connection = counting(cache)
        for target in range(4):
            cache.put(result_key("fp", 0, target, 100, 7), 0.5)
        assert connection.commits == 4

    def test_empty_put_many_touches_nothing(self, cache_dir):
        cache = open_result_cache(cache_dir)
        connection = counting(cache)
        cache.put_many([])
        assert connection.commits == 0


class TestBatchedTouches:
    def test_disk_hits_defer_their_recency_commit(self, cache_dir):
        writer = open_result_cache(cache_dir)
        keys = [result_key("fp", 0, target, 100, 7) for target in range(8)]
        writer.put_many((key, 0.5) for key in keys)
        writer.close()

        reader = PersistentResultCache(
            sidecar_of(cache_dir), touch_flush_every=64
        )
        connection = counting(reader)
        for key in keys:
            assert reader.get(key) == 0.5  # all disk hits
        # The legacy behaviour paid one UPDATE+commit per hit; deferral
        # pays none until a flush point.
        assert connection.commits == 0
        assert len(reader._pending_touches) == 8
        reader.close()  # the final flush happens here
        assert not reader._pending_touches

    def test_touch_threshold_triggers_a_flush(self, cache_dir):
        writer = open_result_cache(cache_dir)
        keys = [result_key("fp", 0, target, 100, 7) for target in range(6)]
        writer.put_many((key, 0.25) for key in keys)
        writer.close()

        reader = PersistentResultCache(
            sidecar_of(cache_dir), touch_flush_every=3
        )
        connection = counting(reader)
        for key in keys:
            assert reader.get(key) == 0.25
        assert connection.commits == 2  # 6 hits / threshold 3
        assert not reader._pending_touches

    def test_deferred_touches_survive_close(self, cache_dir):
        # Recency written only at close must still order eviction in the
        # next process: the closed reader's disk hit keeps its row alive.
        cache = PersistentResultCache(
            sidecar_of(cache_dir), capacity=64, disk_capacity=3
        )
        keys = [result_key("fp", 0, target, 100, 7) for target in range(3)]
        for offset, key in enumerate(keys):
            cache.put(key, offset / 4.0)
        cache.close()

        toucher = PersistentResultCache(
            sidecar_of(cache_dir), capacity=64, disk_capacity=3
        )
        assert toucher.get(keys[0]) == 0.0  # deferred disk-hit tick
        toucher.close()  # tick flushed here, not at hit time

        # keys[0] is now the most recently touched row on disk.
        evictor = PersistentResultCache(
            sidecar_of(cache_dir), capacity=64, disk_capacity=3
        )
        evictor.put(result_key("fp", 0, 99, 100, 7), 0.99)
        evictor.close()
        survivor = open_result_cache(cache_dir)
        assert survivor.get(keys[0]) == 0.0
        assert survivor.get(keys[1]) is None  # the true LRU was evicted

    def test_statistics_flushes_pending_recency(self, cache_dir):
        writer = open_result_cache(cache_dir)
        key = result_key("fp", 0, 1, 100, 7)
        writer.put(key, 0.5)
        writer.close()
        reader = open_result_cache(cache_dir)
        assert reader.get(key) == 0.5
        assert reader._pending_touches
        reader.statistics()
        assert not reader._pending_touches


class TestThreadSafety:
    """One sidecar, many handler threads — the serving layer's shape."""

    def test_threaded_hammer_never_corrupts_or_disables(self, cache_dir):
        cache = PersistentResultCache(
            sidecar_of(cache_dir), capacity=32, touch_flush_every=5
        )
        keys = [result_key("fp", 0, target, 100, 7) for target in range(24)]
        errors = []

        def hammer(worker: int) -> None:
            try:
                for round_number in range(120):
                    key = keys[(worker * 7 + round_number) % len(keys)]
                    value = cache.get(key)
                    if value is not None and value != key[2] / 24.0:
                        errors.append(("wrong value", key, value))
                    cache.put(key, key[2] / 24.0)
                    if round_number % 40 == 0:
                        cache.statistics()
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(worker,))
            for worker in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert not cache.disabled
        stats = cache.statistics()
        assert stats["persistent"] is True
        assert stats["disk_size"] == len(keys)
        cache.close()
        # Every value survived the stampede bit-exactly.
        reopened = open_result_cache(cache_dir)
        for key in keys:
            assert reopened.get(key) == key[2] / 24.0

    def test_concurrent_put_many_batches_interleave_safely(self, cache_dir):
        cache = open_result_cache(cache_dir)
        errors = []

        def writer(worker: int) -> None:
            try:
                cache.put_many(
                    (result_key("fp", worker, target, 100, 7), 0.5)
                    for target in range(50)
                )
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=writer, args=(worker,))
            for worker in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert not cache.disabled
        assert cache._disk_size() == 300

    def test_flush_publishes_recency_without_closing(self, cache_dir):
        # flush() is the on-demand flush point for operators that want
        # cross-process recency visibility from a still-open cache.
        writer = open_result_cache(cache_dir)
        key = result_key("fp", 0, 1, 100, 7)
        writer.put(key, 0.5)
        writer.close()
        reader = open_result_cache(cache_dir)
        connection = counting(reader)
        assert reader.get(key) == 0.5
        assert reader._pending_touches
        reader.flush()
        assert not reader._pending_touches
        assert connection.commits == 1
        assert not reader.disabled  # still open and serving
        assert reader.get(key) == 0.5
