"""Property tests for the multiprocess chunk sweep.

The engine's headline guarantee (see the determinism contract in
:mod:`repro.engine.batch`): because world ``i`` is a pure function of
``(graph, seed, i)`` and per-chunk hit counts are integers, fanning chunk
ranges out over a process pool cannot change a single bit of any result.
These tests pin that down for random plans, chunk sizes, seeds, worker
counts, and d-hop bounds.
"""

import multiprocessing
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.estimators.monte_carlo import MonteCarloEstimator
from repro.engine import parallel as parallel_module
from repro.engine.batch import WORKERS_ENV_VAR, BatchEngine, resolve_workers
from repro.engine.cache import ResultCache
from repro.engine.parallel import ParallelBatchEngine, default_worker_count
from repro.engine.pool import POOL_ENV_VAR
from tests.conftest import random_graph

#: Mixed workload: duplicates, shared sources, distinct budgets, and d-hop
#: twins of unbounded queries (same pair, different indicator).
WORKLOAD = [
    (0, 3, 400),
    (0, 5, 400),
    (1, 4, 250),
    (2, 6, 300),
    (0, 3, 400),  # duplicate on purpose
    (5, 2, 150),
    (0, 3, 400, 2),
    (1, 4, 250, 3),
]


@pytest.fixture(scope="module")
def graph():
    return random_graph(seed=11, node_count=12, edge_probability=0.25)


class TestBitForBitAgreement:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_equals_serial_exactly(self, graph, workers):
        serial = BatchEngine(graph, seed=5, chunk_size=64).run(WORKLOAD)
        parallel = BatchEngine(
            graph, seed=5, chunk_size=64, workers=workers
        ).run(WORKLOAD)
        np.testing.assert_array_equal(serial.estimates, parallel.estimates)
        # Same chunk boundaries => identical instrumentation too.
        assert parallel.worlds_sampled == serial.worlds_sampled
        assert parallel.sweeps == serial.sweeps
        assert parallel.cache_hits == serial.cache_hits
        assert parallel.cache_misses == serial.cache_misses
        assert parallel.workers == workers

    def test_parallel_agrees_with_sequential_oracle(self, graph):
        parallel = BatchEngine(
            graph, seed=9, chunk_size=32, workers=2
        ).run(WORKLOAD)
        oracle = BatchEngine(graph, seed=9).run_sequential(WORKLOAD)
        np.testing.assert_array_equal(parallel.estimates, oracle.estimates)

    @pytest.mark.parametrize("sweep", ["bitset", "per_world"])
    def test_both_sweep_modes_parallelise(self, graph, sweep):
        serial = BatchEngine(
            graph, seed=5, chunk_size=64, sweep=sweep
        ).run(WORKLOAD)
        parallel = BatchEngine(
            graph, seed=5, chunk_size=64, sweep=sweep, workers=2
        ).run(WORKLOAD)
        np.testing.assert_array_equal(serial.estimates, parallel.estimates)

    @settings(
        max_examples=8,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        queries=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=11),
                st.integers(min_value=0, max_value=11),
                st.integers(min_value=1, max_value=120),
                st.one_of(st.none(), st.integers(min_value=1, max_value=4)),
            ),
            min_size=1,
            max_size=6,
        ),
        chunk_size=st.sampled_from([1, 7, 32, 64]),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    def test_random_plans_agree_bit_for_bit(
        self, graph, queries, chunk_size, seed
    ):
        serial = BatchEngine(graph, seed=seed, chunk_size=chunk_size).run(
            queries
        )
        parallel = BatchEngine(
            graph, seed=seed, chunk_size=chunk_size, workers=2
        ).run(queries)
        np.testing.assert_array_equal(serial.estimates, parallel.estimates)
        assert parallel.sweeps == serial.sweeps


class TestDHopInvariants:
    DHOP_WORKLOAD = [(0, 3, 300, 2), (0, 5, 300, 1), (2, 6, 200, 3)]

    @pytest.mark.parametrize("chunk_size", [1, 13, 64, 1000])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_dhop_independent_of_chunking_and_workers(
        self, graph, chunk_size, workers
    ):
        reference = BatchEngine(graph, seed=3, chunk_size=17).run(
            self.DHOP_WORKLOAD
        )
        other = BatchEngine(
            graph, seed=3, chunk_size=chunk_size, workers=workers
        ).run(self.DHOP_WORKLOAD)
        np.testing.assert_array_equal(reference.estimates, other.estimates)

    def test_large_hop_bound_equals_unbounded(self, graph):
        # Any bound >= node count covers every simple path, so the d-hop
        # indicator coincides with plain reachability world by world.
        bounded = BatchEngine(graph, seed=3).run([(0, 3, 300, 12)])
        unbounded = BatchEngine(graph, seed=3).run([(0, 3, 300)])
        assert bounded.estimates[0] == unbounded.estimates[0]

    def test_hop_bound_is_monotone(self, graph):
        result = BatchEngine(graph, seed=3).run(
            [(0, 3, 400, hops) for hops in (1, 2, 3)] + [(0, 3, 400)]
        )
        estimates = result.estimates
        assert estimates[0] <= estimates[1] <= estimates[2] <= estimates[3]


class TestSchedulingAndFallback:
    def test_single_chunk_runs_in_process(self, graph):
        result = BatchEngine(
            graph, seed=5, chunk_size=1000, workers=4
        ).run(WORKLOAD)
        assert result.workers == 1  # one task: nothing to fan out

    def test_workers_capped_by_task_count(self, graph):
        # K=400, chunk_size=200 -> 2 tasks; 8 workers collapse to 2.
        result = BatchEngine(
            graph, seed=5, chunk_size=200, workers=8
        ).run(WORKLOAD)
        assert result.workers == 2

    def test_parallel_run_populates_parent_cache(self, graph):
        engine = BatchEngine(graph, seed=5, chunk_size=64, workers=2)
        first = engine.run(WORKLOAD)
        assert first.cache_misses == len(set(WORKLOAD))
        replay = engine.run(WORKLOAD)
        assert replay.worlds_sampled == 0
        assert replay.cache_hits == len(set(WORKLOAD))
        np.testing.assert_array_equal(first.estimates, replay.estimates)

    def test_parallel_cache_interoperates_with_serial(self, graph):
        cache = ResultCache(capacity=64)
        BatchEngine(graph, seed=5, workers=2, chunk_size=64, cache=cache).run(
            WORKLOAD
        )
        serial_replay = BatchEngine(graph, seed=5, cache=cache).run(WORKLOAD)
        assert serial_replay.worlds_sampled == 0


class TestConfiguration:
    def test_workers_must_be_positive(self, graph):
        with pytest.raises(ValueError):
            BatchEngine(graph, workers=0)

    def test_resolve_workers_explicit(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        assert resolve_workers(3) == 3
        assert resolve_workers(None) == 1

    def test_env_var_supplies_default(self, graph, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "3")
        assert BatchEngine(graph).workers == 3
        # Explicit argument beats the environment.
        assert BatchEngine(graph, workers=1).workers == 1

    def test_blank_env_var_means_serial(self, graph, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "")
        assert BatchEngine(graph).workers == 1

    def test_garbage_env_var_names_its_source(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "abc")
        with pytest.raises(ValueError, match=WORKERS_ENV_VAR):
            resolve_workers(None)

    def test_parallel_engine_defaults_to_cpu_count(self, graph):
        engine = ParallelBatchEngine(graph, seed=5)
        assert isinstance(engine, BatchEngine)
        assert engine.workers == default_worker_count()
        assert ParallelBatchEngine(graph, workers=2).workers == 2

    def test_parallel_engine_result_matches_batch_engine(self, graph):
        reference = BatchEngine(graph, seed=5, chunk_size=64).run(WORKLOAD)
        result = ParallelBatchEngine(graph, seed=5, chunk_size=64).run(
            WORKLOAD
        )
        np.testing.assert_array_equal(reference.estimates, result.estimates)


class ChunkBoom(RuntimeError):
    """Marker raised inside a worker to simulate a mid-fan-out failure."""


_REAL_EVALUATE_RANGE = parallel_module._evaluate_range


def _exploding_range(task):
    # Module-level so it pickles by reference into forked workers; the
    # captured original keeps the non-failing chunks honest.
    chunk_start, _count = task
    if chunk_start == 0:
        raise ChunkBoom("chunk 0 exploded")
    return _REAL_EVALUATE_RANGE(task)


class TestFanOutFailure:
    """Regression: a chunk failing mid-fan-out used to strand the pool.

    Before the submit+cancel rewrite, ``evaluate_chunks_parallel`` ran
    ``pool.map`` inside the executor context, so the context exit's
    ``shutdown(wait=True)`` sat through every still-queued chunk before
    the error could propagate — leaking a pool's worth of doomed work
    (and its worker processes) past the failure.
    """

    @pytest.fixture(autouse=True)
    def _no_shared_pool(self, monkeypatch):
        # Pin the per-run fork path: the shared pool dispatches a
        # different worker entry point and has its own failure tests.
        monkeypatch.delenv(POOL_ENV_VAR, raising=False)
        monkeypatch.setattr(
            parallel_module, "_evaluate_range", _exploding_range
        )

    def test_failure_propagates_with_original_type_and_reaps_workers(
        self, graph
    ):
        baseline = {child.pid for child in multiprocessing.active_children()}
        engine = BatchEngine(graph, seed=5, chunk_size=16, workers=2)
        # Repeated failing runs must neither mask the error nor
        # accumulate worker processes.
        for _ in range(3):
            with pytest.raises(ChunkBoom, match="chunk 0 exploded"):
                engine.run([(0, 3, 2_000)])
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                leaked = {
                    child.pid
                    for child in multiprocessing.active_children()
                } - baseline
                if not leaked:
                    break
                time.sleep(0.05)
            assert not leaked, f"fan-out leaked worker processes: {leaked}"

    def test_failed_run_leaves_engine_reusable(self, graph):
        engine = BatchEngine(graph, seed=5, chunk_size=16, workers=2)
        with pytest.raises(ChunkBoom):
            engine.run([(0, 3, 2_000)])
        # Restore the real chunk evaluator: the same engine must still
        # produce bit-identical results after a failed fan-out.
        with pytest.MonkeyPatch.context() as patch:
            patch.setattr(
                parallel_module, "_evaluate_range", _REAL_EVALUATE_RANGE
            )
            recovered = engine.run(WORKLOAD)
        serial = BatchEngine(graph, seed=5, chunk_size=16, workers=1).run(
            WORKLOAD
        )
        np.testing.assert_array_equal(recovered.estimates, serial.estimates)


class TestEstimatorIntegration:
    def test_mc_workers_kwarg_cannot_change_estimates(self, graph):
        mc = MonteCarloEstimator(graph, seed=0)
        serial = mc.estimate_batch(WORKLOAD, seed=5, chunk_size=64)
        parallel = mc.estimate_batch(
            WORKLOAD, seed=5, chunk_size=64, workers=2
        )
        np.testing.assert_array_equal(serial, parallel)
