"""Distance-constrained (d-hop, §2.9) batch queries through the engine.

Semantics: a ``BatchQuery`` with ``max_hops=d`` estimates the probability
that the target is within ``d`` edges of the source — per world, the
hop-bounded BFS indicator.  These tests check the semantics against
closed-form values on the conftest toy graphs, the grouping in the
planner, and that the result cache never serves an estimate across
different hop bounds.
"""

import numpy as np
import pytest

from repro.core.estimators.monte_carlo import MonteCarloEstimator
from repro.core.registry import create_estimator
from repro.datasets.queries import QueryWorkload
from repro.engine.batch import BatchEngine
from repro.engine.plan import plan_queries
from repro.experiments.convergence import evaluate_at_k
from tests.conftest import random_graph


@pytest.fixture(scope="module")
def graph():
    return random_graph(seed=11, node_count=12, edge_probability=0.25)


class TestSemantics:
    def test_unreachable_within_bound_is_exactly_zero(self, diamond_graph):
        # 0 -> 3 needs two edges; within one hop the indicator is false in
        # every possible world, so the estimate is identically 0.
        result = BatchEngine(diamond_graph, seed=3).run([(0, 3, 500, 1)])
        assert result.estimates[0] == 0.0

    def test_diamond_two_hop_matches_exact(self, diamond_graph):
        # Within two hops both disjoint paths count: exact 0.4375.
        result = BatchEngine(diamond_graph, seed=3).run([(0, 3, 4000, 2)])
        assert result.estimates[0] == pytest.approx(0.4375, abs=0.03)

    def test_chain_needs_full_length(self, chain_graph):
        result = BatchEngine(chain_graph, seed=3).run(
            [(0, 3, 4000, 2), (0, 3, 4000, 3)]
        )
        assert result.estimates[0] == 0.0
        assert result.estimates[1] == pytest.approx(0.512, abs=0.03)

    def test_sweep_modes_agree_on_dhop(self, graph):
        workload = [(0, 3, 300, 2), (0, 5, 300, 1), (2, 6, 200, 3), (0, 3, 300)]
        bitset_run = BatchEngine(graph, seed=5, sweep="bitset").run(workload)
        per_world = BatchEngine(graph, seed=5, sweep="per_world").run(workload)
        np.testing.assert_array_equal(
            bitset_run.estimates, per_world.estimates
        )

    def test_sequential_oracle_agrees_on_dhop(self, graph):
        workload = [(0, 3, 300, 2), (0, 5, 150, 1)]
        batch = BatchEngine(graph, seed=5).run(workload)
        sequential = BatchEngine(graph, seed=5).run_sequential(workload)
        np.testing.assert_array_equal(batch.estimates, sequential.estimates)

    def test_report_rows_carry_hop_bound(self, diamond_graph):
        rows = BatchEngine(diamond_graph, seed=3).run(
            [(0, 3, 10, 2), (0, 3, 10)]
        ).as_rows()
        assert rows[0]["max_hops"] == 2
        assert rows[1]["max_hops"] is None


class TestPlanning:
    def test_hop_bound_distinguishes_queries(self, diamond_graph):
        plan = plan_queries(
            diamond_graph, [(0, 3, 100), (0, 3, 100, 2), (0, 3, 100, 2)]
        )
        assert plan.unique_count == 2
        assert plan.assignment == (0, 1, 1)

    def test_groups_split_by_hop_bound(self, diamond_graph):
        plan = plan_queries(
            diamond_graph,
            [(0, 3, 100), (0, 1, 60, 2), (0, 2, 40, 2), (0, 3, 20, 1)],
        )
        keys = [(group.source, group.max_hops) for group in plan.groups]
        assert keys == [(0, 1), (0, 2), (0, None)]
        by_key = {key: group for key, group in zip(keys, plan.groups)}
        assert by_key[(0, 2)].targets.tolist() == [1, 2]
        assert by_key[(0, None)].targets.tolist() == [3]

    def test_invalid_hop_bound_rejected(self, diamond_graph):
        with pytest.raises(ValueError, match="max_hops"):
            plan_queries(diamond_graph, [(0, 3, 100, 0)])
        with pytest.raises(ValueError, match="max_hops"):
            plan_queries(diamond_graph, [(0, 3, 100, -2)])


class TestEstimatorWiring:
    def test_mc_estimate_batch_serves_dhop(self, graph):
        mc = MonteCarloEstimator(graph, seed=0)
        via_estimator = mc.estimate_batch([(0, 3, 200, 2)], seed=5)
        via_engine = BatchEngine(graph, seed=5).run([(0, 3, 200, 2)])
        np.testing.assert_array_equal(
            via_estimator, via_engine.estimates
        )

    def test_fallback_estimators_reject_hop_bounded_batches(self, graph):
        rhh = create_estimator("rhh", graph, seed=0)
        with pytest.raises(NotImplementedError, match="max_hops"):
            rhh.estimate_batch([(0, 3, 50, 2)], seed=1)

    def test_fallback_accepts_explicit_none_hop_bound(self, graph):
        rhh = create_estimator("rhh", graph, seed=0)
        estimates = rhh.estimate_batch([(0, 3, 50, None)], seed=1)
        assert estimates.shape == (1,)


class TestConvergenceWiring:
    def test_dhop_grid_point_bounded_above_by_unbounded(self, graph):
        workload = QueryWorkload(pairs=((0, 3), (1, 4)), hop_distance=2, seed=0)
        mc = MonteCarloEstimator(graph, seed=0)
        bounded = evaluate_at_k(
            mc, workload, 200, repeats=2, seed=0, use_batch=True, max_hops=2
        )
        unbounded = evaluate_at_k(
            mc, workload, 200, repeats=2, seed=0, use_batch=True
        )
        # Same worlds, stricter indicator: per-pair means can only shrink.
        assert (bounded.per_pair_means <= unbounded.per_pair_means).all()

    def test_workers_cannot_change_a_grid_point(self, graph):
        workload = QueryWorkload(pairs=((0, 3), (1, 4)), hop_distance=2, seed=0)
        mc = MonteCarloEstimator(graph, seed=0)
        serial = evaluate_at_k(
            mc, workload, 300, repeats=2, seed=0, use_batch=True
        )
        parallel = evaluate_at_k(
            mc, workload, 300, repeats=2, seed=0, use_batch=True, workers=2
        )
        np.testing.assert_array_equal(
            serial.per_pair_means, parallel.per_pair_means
        )

    def test_max_hops_requires_batch_path(self, graph):
        workload = QueryWorkload(pairs=((0, 3),), hop_distance=2, seed=0)
        mc = MonteCarloEstimator(graph, seed=0)
        with pytest.raises(ValueError, match="use_batch"):
            evaluate_at_k(mc, workload, 100, repeats=1, seed=0, max_hops=2)


class TestCacheKeying:
    """A ``(s, t, K, seed)`` hit must never cross hop bounds."""

    def test_unbounded_hit_not_served_for_hop_bounded_query(self, graph):
        engine = BatchEngine(graph, seed=5)
        engine.run([(0, 3, 200)])
        bounded = engine.run([(0, 3, 200, 2)])
        assert bounded.cache_hits == 0
        assert bounded.worlds_sampled == 200  # re-swept, not replayed

    def test_hop_bounded_hit_not_served_for_unbounded_query(self, graph):
        engine = BatchEngine(graph, seed=5)
        engine.run([(0, 3, 200, 2)])
        unbounded = engine.run([(0, 3, 200)])
        assert unbounded.cache_hits == 0
        assert unbounded.worlds_sampled == 200

    def test_distinct_hop_bounds_cache_separately(self, graph):
        engine = BatchEngine(graph, seed=5)
        engine.run([(0, 3, 200, 2)])
        other_bound = engine.run([(0, 3, 200, 3)])
        assert other_bound.cache_hits == 0
        same_bound = engine.run([(0, 3, 200, 2)])
        assert same_bound.cache_hits == 1
        assert same_bound.worlds_sampled == 0

    def test_hop_bounded_replay_is_exact(self, graph):
        engine = BatchEngine(graph, seed=5)
        first = engine.run([(0, 3, 200, 2)])
        replay = engine.run([(0, 3, 200, 2)])
        np.testing.assert_array_equal(first.estimates, replay.estimates)
        assert replay.worlds_sampled == 0
