"""Cross-process warm start: the acceptance test for cache persistence.

Each test runs the real ``repro`` CLI in **separate OS processes**
(``sys.executable -m repro``), sharing only the ``--cache-dir`` sidecar on
disk.  The second process must be served entirely from the persistent
cache — zero world evaluations — with bit-identical estimates, which is
the whole point of spilling the result cache past process lifetime.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


def run_repro(arguments, tmp_path):
    """Run ``python -m repro <arguments>`` in a fresh process."""
    environment = dict(os.environ)
    environment["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + environment["PYTHONPATH"]
        if environment.get("PYTHONPATH")
        else ""
    )
    completed = subprocess.run(
        [sys.executable, "-m", "repro", *arguments],
        capture_output=True,
        text=True,
        env=environment,
        cwd=tmp_path,
        timeout=180,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


@pytest.fixture
def query_file(tmp_path):
    path = tmp_path / "queries.txt"
    path.write_text("0 5 200\n3 9 150\n0 7 200 2\n", encoding="utf-8")
    return path


def batch_arguments(query_file, cache_dir, *extra):
    return [
        "batch", "--queries", str(query_file), "--dataset", "lastfm",
        "--scale", "tiny", "--seed", "3", "--cache-dir", str(cache_dir),
        *extra,
    ]


class TestCrossProcessWarmStart:
    def test_second_run_samples_zero_worlds(self, tmp_path, query_file):
        cache_dir = tmp_path / "cache"
        cold = json.loads(
            run_repro(batch_arguments(query_file, cache_dir), tmp_path)
        )
        warm = json.loads(
            run_repro(batch_arguments(query_file, cache_dir), tmp_path)
        )
        assert cold["engine"]["worlds_sampled"] == 200
        assert warm["engine"]["worlds_sampled"] == 0
        assert warm["engine"]["sweeps"] == 0
        assert warm["engine"]["cache"]["disk_hits"] == warm["query_count"]
        assert [row["estimate"] for row in warm["results"]] == [
            row["estimate"] for row in cold["results"]
        ]

    def test_warm_start_crosses_estimators(self, tmp_path, query_file):
        # mc and bfs_sharing share the engine's exact cache key, so a
        # sidecar written by one serves the other — across processes.
        cache_dir = tmp_path / "cache"
        cold = json.loads(
            run_repro(batch_arguments(query_file, cache_dir), tmp_path)
        )
        warm = json.loads(
            run_repro(
                batch_arguments(
                    query_file, cache_dir, "--method", "bfs_sharing"
                ),
                tmp_path,
            )
        )
        assert warm["engine"]["worlds_sampled"] == 0
        assert [row["estimate"] for row in warm["results"]] == [
            row["estimate"] for row in cold["results"]
        ]

    def test_corrupted_sidecar_is_survived_end_to_end(
        self, tmp_path, query_file
    ):
        from repro.engine.cache import RESULT_CACHE_FILENAME

        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        (cache_dir / RESULT_CACHE_FILENAME).write_bytes(b"corrupt" * 100)
        report = json.loads(
            run_repro(batch_arguments(query_file, cache_dir), tmp_path)
        )
        assert report["engine"]["worlds_sampled"] == 200
        rerun = json.loads(
            run_repro(batch_arguments(query_file, cache_dir), tmp_path)
        )
        assert rerun["engine"]["worlds_sampled"] == 0
