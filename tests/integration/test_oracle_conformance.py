"""Exact-oracle conformance suite: every estimator vs ground truth.

The paper's accuracy comparison (Tables 3-8) as an executable test: on
hypothesis-generated small graphs, every registered estimator's estimate
must land within a confidence-interval-derived tolerance of the exact
reliability (:mod:`repro.core.exact`).  The tolerance is the one quantity
sampling theory promises: the MC hit rate is Binomial with standard
deviation ``sqrt(R(1-R)/K)`` (paper Eq. 4), every studied estimator is
unbiased with variance at most MC's (paper §3.2 orders them *below* MC),
so ``Z`` standard deviations plus a small discretisation slack bounds all
of them.

``lp`` (the *uncorrected* Lazy Propagation) is deliberately excluded from
the conformance sweep: the paper's Fig. 5 exists precisely because it is
biased, and :class:`TestKnownBiasedEstimator` asserts that finding instead
of hiding it.

The suite is derandomized: same graphs, same seeds, every run — a
conformance gate, not a statistical coin flip.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.exact import reliability_exact
from repro.core.graph import UncertainGraph
from repro.core.possible_world import world_probability
from repro.core.registry import create_estimator, estimator_keys
from repro.engine.batch import BatchEngine
from repro.util.rng import stable_substream
from tests.conftest import small_graph_parts

#: Sample budget per conformance query.
SAMPLES = 1_200

#: CI width in standard deviations.  Per assertion the miss probability is
#: ~6e-6 for an exact-variance estimator; the suite is derandomized, so a
#: persistent miss means a bug, not bad luck.
Z = 4.5

#: Discretisation slack: estimates move in steps of 1/K, and the recursive
#: estimators allocate integer sample counts to branches.
SLACK = 0.02

#: Estimators the paper shows to be *biased* — excluded from conformance
#: and pinned by their own test below.
KNOWN_BIASED = {"lp"}

CONFORMANT_ESTIMATORS = sorted(set(estimator_keys()) - KNOWN_BIASED)

CONFORMANCE_SETTINGS = settings(
    max_examples=10,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)


def tolerance(exact: float, samples: int = SAMPLES) -> float:
    """CI-derived acceptance band around the exact reliability."""
    return Z * np.sqrt(exact * (1.0 - exact) / samples) + SLACK


def build(parts) -> UncertainGraph:
    node_count, edges = parts
    return UncertainGraph(node_count, edges)


@pytest.mark.parametrize("key", CONFORMANT_ESTIMATORS)
class TestEstimatorConformance:
    @CONFORMANCE_SETTINGS
    @given(parts=small_graph_parts)
    def test_estimate_within_ci_of_exact(self, key, parts):
        graph = build(parts)
        source, target = 0, graph.node_count - 1
        exact = reliability_exact(graph, source, target)
        estimator = create_estimator(key, graph, seed=0)
        estimator.prepare()
        estimate = estimator.estimate(
            source, target, SAMPLES,
            rng=stable_substream(0, source, target),
        )
        assert abs(estimate - exact) <= tolerance(exact), (
            f"{key}: |{estimate} - exact {exact}| > {tolerance(exact)}"
        )


@pytest.mark.parametrize("key", CONFORMANT_ESTIMATORS)
class TestBatchPathConformance:
    """Every estimator's ``estimate_batch`` vs the exact oracle.

    Same acceptance band as the per-query sweep, but through the batch
    entry point — covering the shared-world fast paths of ``mc`` and
    ``bfs_sharing`` (engine world chunks), the bag-grouped path of
    ``prob_tree`` (one lifted query graph per (s, t) bag pair), and the
    per-query fallback of the rest.  A fast path that answered a
    *different* random variable than its estimator would be caught here.
    """

    @settings(
        max_examples=6,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(parts=small_graph_parts)
    def test_batch_estimate_within_ci_of_exact(self, key, parts):
        graph = build(parts)
        source, target = 0, graph.node_count - 1
        exact = reliability_exact(graph, source, target)
        estimator = create_estimator(key, graph, seed=0)
        estimator.prepare()
        estimate = estimator.estimate_batch(
            [(source, target, SAMPLES)], seed=0
        )[0]
        assert abs(estimate - exact) <= tolerance(exact), (
            f"{key} batch path: |{estimate} - exact {exact}| > "
            f"{tolerance(exact)}"
        )


class TestFastPathDeterminism:
    """The PR-3 determinism contract, held at conformance granularity.

    Where the batch path is engine-served it must agree with the engine
    (and hence with ``mc``) **bit for bit**; where it is a sampling
    composition (``prob_tree``) it must at least replay exactly under one
    seed, so CI comparisons are stable.
    """

    @CONFORMANCE_SETTINGS
    @given(parts=small_graph_parts)
    def test_engine_backed_paths_agree_bitwise(self, parts):
        graph = build(parts)
        source, target = 0, graph.node_count - 1
        queries = [(source, target, SAMPLES), (source, target, 300)]
        mc = create_estimator("mc", graph, seed=0)
        bfs = create_estimator("bfs_sharing", graph, seed=0)
        engine = BatchEngine(graph, seed=11).run(queries).estimates
        np.testing.assert_array_equal(
            mc.estimate_batch(queries, seed=11), engine
        )
        np.testing.assert_array_equal(
            bfs.estimate_batch(queries, seed=11), engine
        )

    @CONFORMANCE_SETTINGS
    @given(parts=small_graph_parts)
    def test_prob_tree_batch_replays_under_seed(self, parts):
        graph = build(parts)
        source, target = 0, graph.node_count - 1
        queries = [
            (source, target, 300),
            (target, source, 300),
            (source, target, 300),  # duplicate must agree with [0]
        ]
        first = create_estimator("prob_tree", graph, seed=0).estimate_batch(
            queries, seed=11
        )
        second = create_estimator("prob_tree", graph, seed=0).estimate_batch(
            queries, seed=11
        )
        np.testing.assert_array_equal(first, second)
        assert first[0] == first[2]


class TestKernelAndPoolConformance:
    """PR 6: kernel choice and pooled execution cannot move an estimate.

    Every engine-backed estimator path must produce bit-identical
    estimates whether the sweep runs the per-node Python kernels or the
    vectorized uint64 kernels, and whether chunks are evaluated
    in-process or on a shared :class:`~repro.engine.pool.WorkerPool` —
    the serial python-kernel run is the oracle for both axes.
    """

    @CONFORMANCE_SETTINGS
    @given(parts=small_graph_parts)
    def test_vectorized_kernels_agree_bitwise_on_every_engine_path(
        self, parts
    ):
        graph = build(parts)
        source, target = 0, graph.node_count - 1
        queries = [
            (source, target, SAMPLES),
            (target, source, 300),
            (source, target, 250, 2),  # hop-bounded twin
        ]
        oracle = BatchEngine(graph, seed=11, kernels="python").run(queries)
        vectorized = BatchEngine(
            graph, seed=11, kernels="vectorized"
        ).run(queries)
        np.testing.assert_array_equal(
            vectorized.estimates, oracle.estimates
        )
        for key in ("mc", "bfs_sharing"):
            estimator = create_estimator(key, graph, seed=0)
            np.testing.assert_array_equal(
                estimator.estimate_batch(
                    queries, seed=11, kernels="vectorized"
                ),
                oracle.estimates,
            )

    def test_pooled_execution_agrees_bitwise(self):
        from repro.engine.pool import WorkerPool
        from tests.conftest import random_graph

        graph = random_graph(seed=19, node_count=10, edge_probability=0.3)
        queries = [(0, 7, 500), (1, 8, 400), (0, 7, 300, 2)]
        oracle = BatchEngine(graph, seed=11, chunk_size=64).run(queries)
        with WorkerPool(graph, workers=2) as pool:
            for kernels in ("python", "vectorized"):
                pooled = BatchEngine(
                    graph, seed=11, chunk_size=64, workers=2,
                    pool=pool, kernels=kernels,
                ).run(queries)
                np.testing.assert_array_equal(
                    pooled.estimates, oracle.estimates
                )


class TestEngineConformance:
    """The batch engine is an estimator too — hold it to the same oracle."""

    @CONFORMANCE_SETTINGS
    @given(parts=small_graph_parts)
    def test_batch_engine_within_ci_of_exact(self, parts):
        graph = build(parts)
        source, target = 0, graph.node_count - 1
        exact = reliability_exact(graph, source, target)
        result = BatchEngine(graph, seed=0).run([(source, target, SAMPLES)])
        assert abs(result.estimates[0] - exact) <= tolerance(exact)

    @settings(
        max_examples=6,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(parts=small_graph_parts, max_hops=st.integers(1, 4))
    def test_dhop_estimates_match_enumerated_oracle(self, parts, max_hops):
        graph = build(parts)
        source, target = 0, graph.node_count - 1
        exact = _exact_dhop_reliability(graph, source, target, max_hops)
        result = BatchEngine(graph, seed=0).run(
            [(source, target, SAMPLES, max_hops)]
        )
        assert abs(result.estimates[0] - exact) <= tolerance(exact)


def _exact_dhop_reliability(
    graph: UncertainGraph, source: int, target: int, max_hops: int
) -> float:
    """Exact d-hop reliability by world enumeration (small graphs only)."""
    if source == target:
        return 1.0
    m = graph.edge_count
    total = 0.0
    for world_bits in range(1 << m):
        mask = np.array(
            [(world_bits >> edge) & 1 for edge in range(m)], dtype=bool
        )
        if _within_hops(graph, mask, source, target, max_hops):
            total += world_probability(graph, mask)
    return total


def _within_hops(graph, mask, source, target, max_hops) -> bool:
    """Hop-bounded BFS indicator in one materialised world."""
    frontier = {source}
    visited = {source}
    for _ in range(max_hops):
        if target in visited:
            return True
        next_frontier = set()
        for node in frontier:
            start, stop = graph.indptr[node], graph.indptr[node + 1]
            for offset in range(start, stop):
                if mask[offset] and graph.targets[offset] not in visited:
                    next_frontier.add(int(graph.targets[offset]))
        visited |= next_frontier
        frontier = next_frontier
        if not frontier:
            break
    return target in visited


#: A hypothesis-generated update script: each entry picks an operation
#: class (set / add / remove, modulo) plus a probability; the test maps
#: it onto whatever edges the generated graph actually has.
update_script = st.lists(
    st.tuples(st.integers(0, 1_000_000), st.floats(0.05, 0.95)),
    min_size=1,
    max_size=4,
)


def _missing_pair(graph, offset):
    """The first non-edge (u, v) pair scanning from a script offset."""
    n = graph.node_count
    for step in range(n * n):
        index = (offset + step) % (n * n)
        u, v = divmod(index, n)
        if u != v and graph.edge_probability(u, v) is None:
            return u, v
    return None


def _apply_script(graph, script):
    """Play an update script, one mutation per entry, skipping no-ops."""
    from repro.core.mutation import apply_update

    for raw, probability in script:
        probability = round(float(probability), 3)
        edges = list(graph.iter_edges())
        op = raw % 3
        if op == 0 and edges:  # reassign an existing edge
            u, v, _ = edges[raw % len(edges)]
            graph = apply_update(
                graph, set_edges=[(u, v, probability)]
            ).graph
        elif op == 1:  # add a currently missing edge
            pair = _missing_pair(graph, raw)
            if pair is None:
                continue
            graph = apply_update(
                graph, set_edges=[(*pair, probability)]
            ).graph
        elif len(edges) > 1:  # remove (keep the graph non-trivial)
            u, v, _ = edges[raw % len(edges)]
            graph = apply_update(graph, remove_edges=[(u, v)]).graph
    return graph


class TestUpdateConformance:
    """The live-update tentpole, held to the exact oracle.

    A mutated graph is just a graph: every estimator path must conform
    on it, the engine's serial/vectorized bit-identity must survive the
    version transition, and ProbTree's incremental re-lift must be
    indistinguishable from decomposing the successor from scratch.
    """

    @settings(
        max_examples=6,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(parts=small_graph_parts, script=update_script)
    def test_estimators_conform_on_the_mutated_graph(self, parts, script):
        graph = _apply_script(build(parts), script)
        source, target = 0, graph.node_count - 1
        exact = reliability_exact(graph, source, target)
        for key in CONFORMANT_ESTIMATORS:
            estimator = create_estimator(key, graph, seed=0)
            estimator.prepare()
            estimate = estimator.estimate_batch(
                [(source, target, SAMPLES)], seed=0
            )[0]
            assert abs(estimate - exact) <= tolerance(exact), (
                f"{key} on v{graph.version}: |{estimate} - exact {exact}| "
                f"> {tolerance(exact)}"
            )

    @settings(
        max_examples=6,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(parts=small_graph_parts, script=update_script)
    def test_engine_bit_identity_survives_the_version_transition(
        self, parts, script
    ):
        graph = build(parts)
        mutated = _apply_script(graph, script)
        source, target = 0, graph.node_count - 1
        queries = [(source, target, 400), (target, source, 300)]
        serial = BatchEngine(
            mutated, seed=11, kernels="python"
        ).run(queries)
        vectorized = BatchEngine(
            mutated, seed=11, kernels="vectorized"
        ).run(queries)
        np.testing.assert_array_equal(
            vectorized.estimates, serial.estimates
        )

    @settings(
        max_examples=6,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(parts=small_graph_parts, script=update_script)
    def test_shared_cache_never_leaks_across_versions(self, parts, script):
        from repro.engine.cache import ResultCache

        graph = build(parts)
        mutated = _apply_script(graph, script)
        if mutated.version == 0:  # the whole script no-opped
            return
        source, target = 0, graph.node_count - 1
        queries = [(source, target, 400)]
        cache = ResultCache(capacity=64)
        before = BatchEngine(graph, seed=11, cache=cache).run(queries)
        BatchEngine(mutated, seed=11, cache=cache).run(queries)
        replay = BatchEngine(graph, seed=11, cache=cache).run(queries)
        # The predecessor's entry is still exact — served from cache,
        # bit-identical, untouched by the successor's writes.
        assert replay.cache_hits == 1
        np.testing.assert_array_equal(replay.estimates, before.estimates)

    @settings(
        max_examples=8,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        parts=small_graph_parts,
        script=st.lists(
            st.tuples(st.integers(0, 1_000_000), st.floats(0.05, 0.95)),
            min_size=1,
            max_size=3,
        ),
    )
    def test_prob_tree_incremental_relift_matches_fresh_rebuild(
        self, parts, script
    ):
        from repro.core.mutation import apply_update

        graph = build(parts)
        edges = list(graph.iter_edges())
        if not edges:  # nothing to reassign on an edgeless graph
            return
        # Probability-only reassignments of existing edges (the
        # incremental path); structural scripts rebuild and are covered
        # above.
        changes = {}
        for raw, probability in script:
            u, v, _ = edges[raw % len(edges)]
            changes[(u, v)] = round(float(probability), 3)
        incremental = create_estimator("prob_tree", graph, seed=0)
        incremental.prepare()
        mutation = apply_update(
            graph, set_edges=[(u, v, p) for (u, v), p in changes.items()]
        )
        mode = incremental.apply_update(
            mutation.graph,
            touched_edges=mutation.touched_edges,
            structural=mutation.structural,
        )
        assert mode == "incremental"
        fresh = create_estimator("prob_tree", mutation.graph, seed=0)
        fresh.prepare()
        source, target = 0, graph.node_count - 1
        queries = [(source, target, 300), (target, source, 300)]
        np.testing.assert_array_equal(
            incremental.estimate_batch(queries, seed=11),
            fresh.estimate_batch(queries, seed=11),
        )


class TestKnownBiasedEstimator:
    """Fig. 5's finding as a regression pin: uncorrected LP is biased.

    Not hypothesis-driven — the early-fire bias needs a topology that
    triggers it (a hub whose medium-probability edges are re-expanded
    every sample; same structure as ``tests/core/estimators/
    test_lazy_propagation.py``).  If this starts failing, ``lp`` got
    fixed and belongs in ``CONFORMANT_ESTIMATORS`` instead.
    """

    @staticmethod
    def _hub_graph() -> UncertainGraph:
        edges = [(0, v, 0.4) for v in range(1, 8)]
        edges += [(v, 8, 0.4) for v in range(1, 8)]
        return UncertainGraph(9, edges)

    def test_uncorrected_lp_deviates_where_lp_plus_conforms(self):
        graph = self._hub_graph()
        exact = reliability_exact(graph, 0, 8)
        estimates = {}
        for key in ("lp", "lp_plus"):
            estimator = create_estimator(key, graph, seed=0)
            runs = [
                estimator.estimate(
                    0, 8, SAMPLES, rng=stable_substream(run, 0, 8)
                )
                for run in range(8)
            ]
            estimates[key] = float(np.mean(runs))
        assert abs(estimates["lp_plus"] - exact) <= tolerance(exact)
        assert estimates["lp"] > exact + 0.03  # the Fig. 5 overestimate
