"""Cross-estimator integration tests.

The paper's fundamental premise: all six estimators are unbiased for the
same quantity, so with enough samples they agree with the exact reliability
and with each other — on arbitrary graphs, including the dataset suite's
synthetic topologies.
"""

import numpy as np
import pytest

from repro.core.exact import reliability_exact
from repro.core.registry import PAPER_ESTIMATORS, create_estimator
from repro.datasets.queries import generate_workload
from repro.datasets.suite import load_dataset
from tests.conftest import random_graph

ESTIMATOR_OPTIONS = {
    "bfs_sharing": {"capacity": 4_000, "refresh_per_query": True},
    "rss": {"stratum_edges": 5},
}


def make(key, graph, seed=0):
    return create_estimator(key, graph, seed=seed, **ESTIMATOR_OPTIONS.get(key, {}))


class TestAgreementWithExact:
    @pytest.mark.parametrize("key", PAPER_ESTIMATORS)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_estimator_matches_exact(self, key, seed):
        graph = random_graph(seed)
        exact = reliability_exact(graph, 0, 7)
        estimator = make(key, graph, seed)
        estimates = [
            estimator.estimate(0, 7, 2_000, rng=np.random.default_rng(run))
            for run in range(8)
        ]
        assert np.mean(estimates) == pytest.approx(exact, abs=0.03), key


class TestAgreementOnDatasets:
    @pytest.mark.parametrize(
        "dataset_key", ["lastfm", "nethept", "as_topology", "dblp02", "biomine"]
    )
    def test_all_estimators_agree_on_tiny_dataset(self, dataset_key):
        graph = load_dataset(dataset_key, "tiny", seed=0).graph
        workload = generate_workload(graph, pair_count=3, hop_distance=2, seed=1)
        source, target = workload.pairs[0]
        means = {}
        for key in PAPER_ESTIMATORS:
            estimator = make(key, graph)
            estimates = [
                estimator.estimate(
                    source, target, 1_500, rng=np.random.default_rng(run)
                )
                for run in range(6)
            ]
            means[key] = float(np.mean(estimates))
        spread = max(means.values()) - min(means.values())
        assert spread < 0.06, means


class TestVarianceOrdering:
    def test_recursive_estimators_have_lower_average_variance(self):
        """Paper §3.2 finding (1)-(2): RHH/RSS variance < MC-family variance.

        Averaged over pairs like the paper's V_K (Eq. 12); the comparison is
        between family means with a small tolerance since sample variances
        of variances are noisy.
        """
        graph = load_dataset("dblp02", "tiny", seed=0).graph
        workload = generate_workload(graph, pair_count=3, hop_distance=2, seed=2)
        samples = 200
        repeats = 80
        variances = {}
        for key in ("mc", "lp_plus", "rhh", "rss"):
            estimator = make(key, graph)
            per_pair = []
            for pair_index, (source, target) in enumerate(workload):
                estimates = np.array(
                    [
                        estimator.estimate(
                            source,
                            target,
                            samples,
                            rng=np.random.default_rng(1000 * pair_index + run),
                        )
                        for run in range(repeats)
                    ]
                )
                per_pair.append(estimates.var(ddof=1))
            variances[key] = float(np.mean(per_pair))
        recursive_family = np.mean([variances["rhh"], variances["rss"]])
        mc_family = np.mean([variances["mc"], variances["lp_plus"]])
        assert recursive_family < mc_family, variances


class TestProbTreeCouplings:
    """§3.8: ProbTree composes with any estimator and stays accurate."""

    @pytest.mark.parametrize("inner_key", ["lp_plus", "rhh", "rss"])
    def test_coupled_probtree_matches_exact(self, inner_key):
        graph = random_graph(2)
        exact = reliability_exact(graph, 0, 7)
        def factory(g):
            return make(inner_key, g)

        estimator = create_estimator(
            "prob_tree", graph, estimator_factory=factory, seed=0
        )
        estimates = [
            estimator.estimate(0, 7, 2_000, rng=np.random.default_rng(run))
            for run in range(8)
        ]
        assert np.mean(estimates) == pytest.approx(exact, abs=0.03)
