"""Tests for NetworkX interoperability."""

import networkx as nx
import pytest

from repro.core.exact import reliability_exact
from repro.core.graph import UncertainGraph
from repro.interop import from_networkx, to_networkx


class TestFromNetworkx:
    def test_directed_graph(self):
        source = nx.DiGraph()
        source.add_edge("a", "b", probability=0.5)
        source.add_edge("b", "c", probability=0.25)
        graph, node_map = from_networkx(source)
        assert graph.node_count == 3
        assert graph.edge_probability(node_map["a"], node_map["b"]) == 0.5
        assert graph.edge_probability(node_map["b"], node_map["a"]) is None

    def test_undirected_becomes_bidirected(self):
        source = nx.Graph()
        source.add_edge(0, 1, probability=0.7)
        graph, node_map = from_networkx(source)
        assert graph.edge_probability(node_map[0], node_map[1]) == 0.7
        assert graph.edge_probability(node_map[1], node_map[0]) == 0.7

    def test_missing_attribute_rejected(self):
        source = nx.DiGraph()
        source.add_edge(0, 1)
        with pytest.raises(ValueError, match="lacks attribute"):
            from_networkx(source)

    def test_default_probability_fallback(self):
        source = nx.DiGraph()
        source.add_edge(0, 1)
        graph, node_map = from_networkx(source, default_probability=0.4)
        assert graph.edge_probability(node_map[0], node_map[1]) == 0.4

    def test_custom_attribute(self):
        source = nx.DiGraph()
        source.add_edge(0, 1, weight=0.9)
        graph, node_map = from_networkx(source, probability_attribute="weight")
        assert graph.edge_probability(node_map[0], node_map[1]) == 0.9

    def test_arbitrary_labels(self):
        source = nx.DiGraph()
        source.add_edge(("gene", 7), ("protein", 3), probability=0.6)
        graph, node_map = from_networkx(source)
        assert graph.edge_probability(
            node_map[("gene", 7)], node_map[("protein", 3)]
        ) == 0.6

    def test_isolated_nodes_preserved(self):
        source = nx.DiGraph()
        source.add_nodes_from([0, 1, 2])
        source.add_edge(0, 1, probability=0.5)
        graph, _ = from_networkx(source)
        assert graph.node_count == 3


class TestToNetworkx:
    def test_roundtrip(self, diamond_graph):
        exported = to_networkx(diamond_graph)
        back, node_map = from_networkx(exported)
        # Dense-id graphs map onto themselves.
        assert back == diamond_graph
        assert all(node_map[i] == i for i in range(4))

    def test_probability_attribute_set(self, chain_graph):
        exported = to_networkx(chain_graph)
        assert exported[0][1]["probability"] == pytest.approx(0.8)

    def test_reliability_consistent_with_networkx_reachability(self):
        # Certain graph: reliability equals networkx reachability.
        graph = UncertainGraph(4, [(0, 1, 1.0), (1, 2, 1.0)])
        exported = to_networkx(graph)
        reachable = nx.has_path(exported, 0, 2)
        assert reliability_exact(graph, 0, 2) == float(reachable)
        assert reliability_exact(graph, 0, 3) == float(nx.has_path(exported, 0, 3))
