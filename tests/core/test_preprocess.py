"""Tests for certain-edge contraction (lossless preprocessing)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimators.monte_carlo import MonteCarloEstimator
from repro.core.exact import reliability_exact
from repro.core.graph import UncertainGraph
from repro.core.preprocess import (
    certain_edge_fraction,
    contract_certain_edges,
)


class TestCertainSccContraction:
    def test_certain_cycle_collapses(self):
        edges = [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0), (2, 3, 0.5)]
        contraction = contract_certain_edges(UncertainGraph(4, edges))
        assert contraction.component_count == 2
        s, t = contraction.map_pair(0, 2)
        assert s == t  # same certain component

    def test_one_way_certain_edge_not_collapsed(self):
        # A certain edge without a certain path back is not an SCC.
        graph = UncertainGraph(2, [(0, 1, 1.0)])
        contraction = contract_certain_edges(graph)
        assert contraction.component_count == 2
        assert contraction.graph.edge_probability(
            *contraction.map_pair(0, 1)
        ) == pytest.approx(1.0)

    def test_bidirected_certain_pair_collapses(self):
        graph = UncertainGraph(3, [(0, 1, 1.0), (1, 0, 1.0), (1, 2, 0.4)])
        contraction = contract_certain_edges(graph)
        assert contraction.component_count == 2
        s, t = contraction.map_pair(0, 1)
        assert s == t

    def test_no_certain_edges_is_identity_shape(self, diamond_graph):
        contraction = contract_certain_edges(diamond_graph)
        assert contraction.component_count == diamond_graph.node_count
        assert contraction.graph.edge_count == diamond_graph.edge_count

    def test_parallel_cross_edges_or_merged(self):
        # Two nodes merge; their parallel edges to node 3 combine.
        edges = [
            (0, 1, 1.0),
            (1, 0, 1.0),
            (0, 2, 0.5),
            (1, 2, 0.5),
        ]
        contraction = contract_certain_edges(UncertainGraph(3, edges))
        s, t = contraction.map_pair(0, 2)
        assert contraction.graph.edge_probability(s, t) == pytest.approx(0.75)


class TestReliabilityPreservation:
    @pytest.mark.parametrize("seed", range(5))
    def test_exact_reliability_preserved(self, seed):
        rng = np.random.default_rng(seed)
        edges = []
        for u in range(7):
            for v in range(7):
                if u != v and rng.random() < 0.3:
                    # A third of the edges certain: contraction has work.
                    p = 1.0 if rng.random() < 0.33 else float(rng.uniform(0.2, 0.9))
                    edges.append((u, v, p))
        graph = UncertainGraph(7, edges)
        contraction = contract_certain_edges(graph)
        s, t = contraction.map_pair(0, 6)
        original = reliability_exact(graph, 0, 6)
        if s == t:
            assert original == pytest.approx(1.0)
        else:
            contracted = reliability_exact(contraction.graph, s, t)
            assert contracted == pytest.approx(original, abs=1e-9)

    def test_estimator_agrees_on_contracted_graph(self):
        edges = [
            (0, 1, 1.0), (1, 0, 1.0),  # certain pair
            (1, 2, 0.6), (2, 3, 0.7), (0, 3, 0.2),
        ]
        graph = UncertainGraph(4, edges)
        contraction = contract_certain_edges(graph)
        s, t = contraction.map_pair(0, 3)
        mc_full = MonteCarloEstimator(graph, seed=0)
        mc_small = MonteCarloEstimator(contraction.graph, seed=0)
        full = mc_full.estimate(0, 3, 40_000, rng=np.random.default_rng(1))
        small = mc_small.estimate(s, t, 40_000, rng=np.random.default_rng(2))
        assert small == pytest.approx(full, abs=0.01)

    @given(
        st.integers(min_value=2, max_value=6).flatmap(
            lambda n: st.tuples(
                st.just(n),
                st.lists(
                    st.tuples(
                        st.integers(0, n - 1),
                        st.integers(0, n - 1),
                        st.sampled_from([1.0, 1.0, 0.3, 0.6, 0.9]),
                    ),
                    max_size=10,
                ),
            )
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_property_contraction_preserves_reliability(self, parts):
        node_count, triples = parts
        graph = UncertainGraph(node_count, triples)
        if graph.edge_count > 12:
            return
        contraction = contract_certain_edges(graph)
        target = node_count - 1
        original = reliability_exact(graph, 0, target)
        s, t = contraction.map_pair(0, target)
        if s == t:
            assert original == pytest.approx(1.0)
        else:
            contracted = reliability_exact(contraction.graph, s, t)
            assert contracted == pytest.approx(original, abs=1e-9)


class TestCertainEdgeFraction:
    def test_fraction(self):
        graph = UncertainGraph(3, [(0, 1, 1.0), (1, 2, 0.5)])
        assert certain_edge_fraction(graph) == pytest.approx(0.5)

    def test_empty_graph(self):
        assert certain_edge_fraction(UncertainGraph(2, [])) == 0.0

    def test_inverse_out_degree_model_can_produce_certain_edges(self):
        # The real LastFM's degree-1 users get probability exactly 1 under
        # the inverse-out-degree model (our analogue's generator keeps
        # minimum degree 2, so its graphs happen to avoid them).
        from repro.datasets.edge_probability import inverse_out_degree

        sources = np.array([0, 1, 1])  # node 0 has out-degree 1
        probs = inverse_out_degree(sources, 2)
        graph = UncertainGraph(
            3, [(0, 1, probs[0]), (1, 0, probs[1]), (1, 2, probs[2])]
        )
        assert certain_edge_fraction(graph) == pytest.approx(1 / 3)
