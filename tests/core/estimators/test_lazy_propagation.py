"""Tests for lazy propagation: LP+ correctness and LP's documented bug."""

import numpy as np
import pytest

from repro.core.estimators.lazy_propagation import (
    LazyPropagationEstimator,
    LazyPropagationOriginal,
)
from repro.core.estimators.monte_carlo import MonteCarloEstimator
from repro.core.exact import reliability_exact
from repro.core.graph import UncertainGraph
from tests.conftest import random_graph


@pytest.fixture(params=["array", "heap"])
def engine(request) -> str:
    return request.param


class TestLpPlusAccuracy:
    def test_matches_exact_on_diamond(self, diamond_graph, engine):
        estimator = LazyPropagationEstimator(diamond_graph, engine=engine, seed=0)
        estimate = estimator.estimate(0, 3, 30_000)
        assert estimate == pytest.approx(0.4375, abs=0.015)

    def test_matches_exact_on_chain(self, chain_graph, engine):
        estimator = LazyPropagationEstimator(chain_graph, engine=engine, seed=1)
        estimate = estimator.estimate(0, 3, 30_000)
        assert estimate == pytest.approx(0.8**3, abs=0.015)

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_exact_on_random_graphs(self, seed, engine):
        graph = random_graph(seed)
        exact = reliability_exact(graph, 0, 7)
        estimator = LazyPropagationEstimator(graph, engine=engine, seed=seed)
        estimate = estimator.estimate(0, 7, 20_000)
        assert estimate == pytest.approx(exact, abs=0.025)

    def test_statistically_equivalent_to_mc(self, diamond_graph, engine):
        # Paper §2.6: "no statistical difference between lazy sampling and
        # classic MC" — compare means over repeated small-K runs.
        lp = LazyPropagationEstimator(diamond_graph, engine=engine)
        mc = MonteCarloEstimator(diamond_graph)
        lp_mean = np.mean(
            [lp.estimate(0, 3, 100, rng=np.random.default_rng(i)) for i in range(200)]
        )
        mc_mean = np.mean(
            [
                mc.estimate(0, 3, 100, rng=np.random.default_rng(1000 + i))
                for i in range(200)
            ]
        )
        assert lp_mean == pytest.approx(mc_mean, abs=0.02)

    def test_probability_one_edges_supported(self, engine):
        graph = UncertainGraph(3, [(0, 1, 1.0), (1, 2, 0.5)])
        estimator = LazyPropagationEstimator(graph, engine=engine, seed=0)
        estimate = estimator.estimate(0, 2, 20_000)
        assert estimate == pytest.approx(0.5, abs=0.02)


class TestLpBug:
    """The uncorrected LP must overestimate (paper Fig. 5, Example 1)."""

    def test_lp_overestimates_on_revisited_structure(self):
        # A graph whose hub is expanded in every sample maximises the
        # early-fire error: hub -> many medium-probability edges.
        rng = np.random.default_rng(7)
        edges = [(0, v, 0.4) for v in range(1, 8)]
        edges += [(v, 8, 0.4) for v in range(1, 8)]
        graph = UncertainGraph(9, edges)
        exact = reliability_exact(graph, 0, 8)
        lp = LazyPropagationOriginal(graph, engine="array", seed=0)
        estimates = [
            lp.estimate(0, 8, 1_000, rng=np.random.default_rng(i)) for i in range(10)
        ]
        assert np.mean(estimates) > exact + 0.03

    def test_lp_plus_does_not_overestimate_same_structure(self):
        edges = [(0, v, 0.4) for v in range(1, 8)]
        edges += [(v, 8, 0.4) for v in range(1, 8)]
        graph = UncertainGraph(9, edges)
        exact = reliability_exact(graph, 0, 8)
        lp_plus = LazyPropagationEstimator(graph, engine="array", seed=0)
        estimates = [
            lp_plus.estimate(0, 8, 1_000, rng=np.random.default_rng(i))
            for i in range(10)
        ]
        assert np.mean(estimates) == pytest.approx(exact, abs=0.02)

    def test_lp_key_and_display_name(self, diamond_graph):
        lp = LazyPropagationOriginal(diamond_graph)
        assert lp.key == "lp"
        assert lp.display_name == "LP"
        lp_plus = LazyPropagationEstimator(diamond_graph)
        assert lp_plus.key == "lp_plus"
        assert lp_plus.display_name == "LP+"

    def test_lp_heap_engine_terminates_with_probability_one_edge(self):
        # The published algorithm would loop forever here; the pop cap must
        # keep the implementation finite.
        graph = UncertainGraph(3, [(0, 1, 1.0), (1, 2, 1.0)])
        lp = LazyPropagationOriginal(graph, engine="heap", seed=0)
        assert lp.estimate(0, 2, 100) == 1.0


class TestEngineParity:
    def test_engines_agree_in_distribution(self, diamond_graph):
        array = LazyPropagationEstimator(diamond_graph, engine="array")
        heap = LazyPropagationEstimator(diamond_graph, engine="heap")
        array_mean = np.mean(
            [
                array.estimate(0, 3, 200, rng=np.random.default_rng(i))
                for i in range(150)
            ]
        )
        heap_mean = np.mean(
            [
                heap.estimate(0, 3, 200, rng=np.random.default_rng(500 + i))
                for i in range(150)
            ]
        )
        assert array_mean == pytest.approx(heap_mean, abs=0.02)

    def test_invalid_engine_rejected(self, diamond_graph):
        with pytest.raises(ValueError):
            LazyPropagationEstimator(diamond_graph, engine="quantum")

    def test_probes_counted(self, diamond_graph, engine):
        estimator = LazyPropagationEstimator(diamond_graph, engine=engine, seed=0)
        estimator.estimate(0, 3, 100)
        assert estimator.last_query_statistics.edges_probed > 0
