"""Tests for BFS Sharing: index structure and shared-BFS equivalence."""

import numpy as np
import pytest

from repro.core.estimators.bfs_sharing import BFSSharingEstimator, BFSSharingIndex
from repro.core.exact import reliability_exact
from repro.core.possible_world import reachable_in_world
from repro.util import bitset
from tests.conftest import random_graph


class TestIndex:
    def test_shape_matches_capacity(self, diamond_graph):
        index = BFSSharingIndex(diamond_graph, capacity=130, rng=0)
        assert index.edge_bits.shape == (4, bitset.packed_words(130))

    def test_refresh_changes_worlds(self, diamond_graph):
        index = BFSSharingIndex(diamond_graph, capacity=256, rng=0)
        before = index.edge_bits.copy()
        index.refresh(rng=1)
        assert not np.array_equal(before, index.edge_bits)

    def test_world_frequencies_match_probabilities(self, diamond_graph):
        index = BFSSharingIndex(diamond_graph, capacity=20_000, rng=0)
        frequencies = bitset.popcount_rows(index.edge_bits) / 20_000
        np.testing.assert_allclose(frequencies, diamond_graph.probs, atol=0.02)

    def test_size_bytes(self, diamond_graph):
        index = BFSSharingIndex(diamond_graph, capacity=64, rng=0)
        assert index.size_bytes() == index.edge_bits.nbytes

    def test_save_load_roundtrip(self, tmp_path, diamond_graph):
        index = BFSSharingIndex(diamond_graph, capacity=100, rng=0)
        path = tmp_path / "index.npz"
        index.save(path)
        loaded = BFSSharingIndex.load(path, diamond_graph)
        np.testing.assert_array_equal(loaded.edge_bits, index.edge_bits)
        assert loaded.capacity == 100

    def test_load_wrong_graph_rejected(self, tmp_path, diamond_graph, chain_graph):
        index = BFSSharingIndex(diamond_graph, capacity=10, rng=0)
        path = tmp_path / "index.npz"
        index.save(path)
        with pytest.raises(ValueError):
            BFSSharingIndex.load(path, chain_graph)

    def test_invalid_capacity(self, diamond_graph):
        with pytest.raises(ValueError):
            BFSSharingIndex(diamond_graph, capacity=0)


class TestSharedBfsEquivalence:
    """The core correctness claim: the shared BFS over bit-vectors computes
    exactly the per-world BFS reachability of every pre-sampled world."""

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_per_world_bfs(self, seed):
        graph = random_graph(seed, node_count=7, edge_probability=0.35)
        samples = 64
        estimator = BFSSharingEstimator(graph, capacity=samples, seed=seed)
        estimator.prepare()
        estimate = estimator.estimate(0, 6, samples)
        # Reconstruct every sampled world from the index and BFS it.
        edge_bits = estimator.index.edge_bits
        hits = 0
        for world in range(samples):
            mask = np.array(
                [bitset.get_bit(edge_bits[e], world) for e in range(graph.edge_count)]
            )
            hits += reachable_in_world(graph, mask, 0, 6)
        assert estimate == pytest.approx(hits / samples, abs=1e-12)

    def test_uses_only_first_k_worlds(self, diamond_graph):
        estimator = BFSSharingEstimator(diamond_graph, capacity=128, seed=0)
        estimator.prepare()
        value = estimator.estimate(0, 3, 32)
        assert (value * 32) == pytest.approx(round(value * 32))


class TestEstimator:
    def test_matches_exact(self, diamond_graph):
        estimator = BFSSharingEstimator(
            diamond_graph, capacity=30_000, seed=0
        )
        estimate = estimator.estimate(0, 3, 30_000)
        assert estimate == pytest.approx(0.4375, abs=0.015)

    def test_capacity_grows_on_demand(self, diamond_graph):
        estimator = BFSSharingEstimator(diamond_graph, capacity=10, seed=0)
        estimator.estimate(0, 3, 50)
        assert estimator.capacity == 50

    def test_refresh_per_query_gives_independent_estimates(self, diamond_graph):
        estimator = BFSSharingEstimator(
            diamond_graph, capacity=200, refresh_per_query=True, seed=0
        )
        a = estimator.estimate(0, 3, 200, rng=np.random.default_rng(1))
        b = estimator.estimate(0, 3, 200, rng=np.random.default_rng(2))
        assert a != b  # virtually certain with 200 worlds

    def test_without_refresh_estimates_repeat(self, diamond_graph):
        estimator = BFSSharingEstimator(
            diamond_graph, capacity=200, refresh_per_query=False, seed=0
        )
        a = estimator.estimate(0, 3, 200, rng=np.random.default_rng(1))
        b = estimator.estimate(0, 3, 200, rng=np.random.default_rng(2))
        assert a == b

    def test_attach_external_index(self, diamond_graph):
        index = BFSSharingIndex(diamond_graph, capacity=64, rng=0)
        estimator = BFSSharingEstimator(diamond_graph)
        estimator.attach_index(index)
        assert estimator.capacity == 64
        assert estimator.index is index

    def test_attach_foreign_index_rejected(self, diamond_graph, chain_graph):
        index = BFSSharingIndex(chain_graph, capacity=8, rng=0)
        estimator = BFSSharingEstimator(diamond_graph)
        with pytest.raises(ValueError):
            estimator.attach_index(index)

    def test_memory_includes_index(self, diamond_graph):
        estimator = BFSSharingEstimator(diamond_graph, capacity=6400, seed=0)
        before = estimator.memory_bytes()
        estimator.prepare()
        assert estimator.memory_bytes() > before


class TestBatchFastPath:
    """The engine-chunk batch path: packed index built from world chunks."""

    WORKLOAD = [(0, 3, 300), (0, 2, 200), (1, 3, 300), (0, 3, 300)]

    def test_matches_engine_bit_for_bit(self, diamond_graph):
        from repro.engine.batch import BatchEngine

        estimator = BFSSharingEstimator(diamond_graph, seed=0)
        via_estimator = estimator.estimate_batch(self.WORKLOAD, seed=5)
        via_engine = BatchEngine(diamond_graph, seed=5).run(self.WORKLOAD)
        np.testing.assert_array_equal(via_estimator, via_engine.estimates)
        assert estimator.last_batch_result.worlds_sampled == 300

    def test_matches_mc_fast_path_bit_for_bit(self, diamond_graph):
        from repro.core.estimators.monte_carlo import MonteCarloEstimator

        bfs = BFSSharingEstimator(diamond_graph, seed=0)
        mc = MonteCarloEstimator(diamond_graph, seed=0)
        np.testing.assert_array_equal(
            bfs.estimate_batch(self.WORKLOAD, seed=5),
            mc.estimate_batch(self.WORKLOAD, seed=5),
        )

    def test_serves_hop_bounded_queries(self, diamond_graph):
        from repro.engine.batch import BatchEngine

        queries = [(0, 3, 250, 1), (0, 3, 250, 2), (0, 3, 250)]
        estimator = BFSSharingEstimator(diamond_graph, seed=0)
        estimates = estimator.estimate_batch(queries, seed=5)
        oracle = BatchEngine(diamond_graph, seed=5).run(queries).estimates
        np.testing.assert_array_equal(estimates, oracle)
        assert estimates[0] == 0.0  # 0 -> 3 needs two hops in the diamond
        assert estimates[1] == estimates[2]  # the diamond is 2 hops deep

    def test_does_not_build_the_offline_index(self, diamond_graph):
        estimator = BFSSharingEstimator(diamond_graph, seed=0)
        estimator.estimate_batch(self.WORKLOAD, seed=5)
        assert estimator._index is None

    def test_memory_reports_chunk_working_set_after_batch(self, diamond_graph):
        estimator = BFSSharingEstimator(diamond_graph, seed=0)
        estimator.estimate_batch(self.WORKLOAD, seed=5)
        batched = estimator.memory_bytes()
        assert batched == estimator._batch_engine.memory_bytes()
        estimator.estimate(0, 3, 64, rng=0)  # per-query path resets
        assert estimator._batch_engine is None
        assert estimator.memory_bytes() != batched

    def test_estimates_are_plausible(self):
        graph = random_graph(3, node_count=9, edge_probability=0.3)
        estimator = BFSSharingEstimator(graph, seed=0)
        estimates = estimator.estimate_batch([(0, 8, 2_000)], seed=5)
        exact = reliability_exact(graph, 0, 8)
        assert abs(estimates[0] - exact) < 0.06
