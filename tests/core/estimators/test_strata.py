"""Tests for BFS-distance stratified sampling (BSS)."""

import numpy as np
import pytest

from repro.core.estimators.monte_carlo import MonteCarloEstimator
from repro.core.estimators.strata import BFSStratifiedEstimator
from repro.core.exact import reliability_exact
from repro.core.graph import UncertainGraph
from tests.conftest import random_graph


class TestAccuracy:
    def test_matches_exact_on_diamond(self, diamond_graph):
        estimator = BFSStratifiedEstimator(
            diamond_graph, stratum_edges=2, seed=0
        )
        estimate = estimator.estimate(0, 3, 20_000)
        assert estimate == pytest.approx(0.4375, abs=0.01)

    @pytest.mark.parametrize("stratum_edges", [1, 2, 4, 16])
    def test_matches_exact_for_any_stratum_width(self, stratum_edges):
        graph = random_graph(2)
        exact = reliability_exact(graph, 0, 7)
        estimator = BFSStratifiedEstimator(
            graph, stratum_edges=stratum_edges
        )
        estimates = [
            estimator.estimate(0, 7, 2_000, rng=np.random.default_rng(i))
            for i in range(10)
        ]
        assert np.mean(estimates) == pytest.approx(exact, abs=0.025)

    def test_unbiased_with_tiny_probabilities(self):
        graph = UncertainGraph(3, [(0, 1, 0.01), (1, 2, 0.9)])
        exact = 0.009
        estimator = BFSStratifiedEstimator(graph, stratum_edges=1)
        estimates = [
            estimator.estimate(0, 2, 100, rng=np.random.default_rng(i))
            for i in range(3_000)
        ]
        assert np.mean(estimates) == pytest.approx(exact, abs=0.002)

    def test_disconnected_target_is_exact_zero(self):
        # Node 3 has no incoming path from 0 even with all edges present.
        graph = UncertainGraph(4, [(0, 1, 0.9), (3, 2, 0.9)])
        estimator = BFSStratifiedEstimator(graph, seed=0)
        assert estimator.estimate(0, 3, 500) == 0.0

    def test_certain_selected_edge(self):
        # A certain edge in the stratum set: strata forcing it absent have
        # zero mass and zero budget — must be skipped without error.
        graph = UncertainGraph(3, [(0, 1, 1.0), (1, 2, 0.5)])
        estimator = BFSStratifiedEstimator(graph, stratum_edges=2)
        estimates = [
            estimator.estimate(0, 2, 500, rng=np.random.default_rng(i))
            for i in range(20)
        ]
        assert np.mean(estimates) == pytest.approx(0.5, abs=0.05)


class TestStratumDesign:
    def test_selected_edges_follow_bfs_distance_order(self):
        # 0 -> 1 -> 2 -> 3 plus a shortcut 0 -> 2: distance-0 edges first.
        graph = UncertainGraph(
            4, [(0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.5), (0, 2, 0.5)]
        )
        estimator = BFSStratifiedEstimator(graph, stratum_edges=4, seed=0)
        selected = estimator._select_edges(0, 3)
        distances = graph.bfs_distances(0)
        selected_distances = distances[graph.edge_sources[selected]]
        assert (np.diff(selected_distances) >= 0).all()
        assert selected_distances[0] == 0

    def test_unreachable_source_edges_excluded(self):
        # Edge 3 -> 2 hangs off a node BFS from 0 never reaches.
        graph = UncertainGraph(4, [(0, 1, 0.5), (1, 2, 0.5), (3, 2, 0.5)])
        estimator = BFSStratifiedEstimator(graph, stratum_edges=8, seed=0)
        selected = estimator._select_edges(0, 2)
        assert 2 not in selected  # edge id 2 is (3, 2) in CSR order
        assert selected.size == 2

    def test_lower_variance_than_mc(self, diamond_graph):
        samples = 200
        bss = BFSStratifiedEstimator(diamond_graph, stratum_edges=2)
        mc = MonteCarloEstimator(diamond_graph)
        bss_estimates = np.array(
            [
                bss.estimate(0, 3, samples, rng=np.random.default_rng(i))
                for i in range(300)
            ]
        )
        mc_estimates = np.array(
            [
                mc.estimate(
                    0, 3, samples, rng=np.random.default_rng(7_000 + i)
                )
                for i in range(300)
            ]
        )
        assert bss_estimates.var(ddof=1) < mc_estimates.var(ddof=1)

    def test_budgets_sum_close_to_k(self, diamond_graph):
        # Stochastic rounding: E[sum] = K, realisations within +-r of it.
        estimator = BFSStratifiedEstimator(
            diamond_graph, stratum_edges=4, seed=0
        )
        selected = estimator._select_edges(0, 3)
        probabilities = diamond_graph.probs[selected]
        absent_prefix = np.concatenate(
            ([1.0], np.cumprod(1.0 - probabilities))
        )
        masses = np.empty(selected.size + 1)
        masses[0] = absent_prefix[-1]
        masses[1:] = probabilities * absent_prefix[:-1]
        assert masses.sum() == pytest.approx(1.0)
        rng = np.random.default_rng(0)
        raw = masses * 1_000
        budgets = np.floor(raw + rng.random(raw.shape)).astype(np.int64)
        assert abs(int(budgets.sum()) - 1_000) <= selected.size + 1


class TestParameters:
    def test_invalid_parameters_rejected(self, diamond_graph):
        with pytest.raises(ValueError):
            BFSStratifiedEstimator(diamond_graph, stratum_edges=0)

    def test_registry_metadata(self, diamond_graph):
        estimator = BFSStratifiedEstimator(diamond_graph)
        assert estimator.key == "strata"
        assert estimator.batch_path == "fallback"
        assert not estimator.uses_index

    def test_reproducible_with_same_stream(self, diamond_graph):
        estimator = BFSStratifiedEstimator(diamond_graph, stratum_edges=2)
        a = estimator.estimate(0, 3, 500, rng=np.random.default_rng(3))
        b = estimator.estimate(0, 3, 500, rng=np.random.default_rng(3))
        assert a == b

    def test_update_repoints_without_stale_state(self, diamond_graph):
        from repro.core.mutation import apply_update

        estimator = BFSStratifiedEstimator(diamond_graph, seed=0)
        estimator.estimate(0, 3, 200)
        mutation = apply_update(diamond_graph, set_edges=((0, 3, 0.9),))
        estimator.apply_update(
            mutation.graph,
            touched_edges=mutation.touched_edges,
            structural=mutation.structural,
        )
        fresh = BFSStratifiedEstimator(mutation.graph, seed=0)
        value_updated = estimator.estimate(
            0, 3, 500, rng=np.random.default_rng(3)
        )
        value_fresh = fresh.estimate(0, 3, 500, rng=np.random.default_rng(3))
        assert value_updated == value_fresh
