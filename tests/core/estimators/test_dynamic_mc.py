"""Tests for the Dynamic MC (BMC) variant of recursive sampling.

Paper §2.4 credits Zhu et al.'s Dynamic MC as "a very similar algorithm" to
RHH: the same divide-and-conquer, but branch budgets drawn per-sample
(binomial) instead of split proportionally.  The key property to verify is
the paper's variance story: proportional allocation *reduces* variance,
binomial allocation matches plain MC.
"""

import numpy as np
import pytest

from repro.core.estimators.monte_carlo import MonteCarloEstimator
from repro.core.estimators.recursive_rhh import (
    DynamicMCEstimator,
    RecursiveSamplingEstimator,
)
from repro.core.exact import reliability_exact
from repro.core.registry import create_estimator
from tests.conftest import random_graph


class TestAccuracy:
    def test_matches_exact_on_diamond(self, diamond_graph):
        estimator = DynamicMCEstimator(diamond_graph, seed=0)
        estimates = [
            estimator.estimate(0, 3, 2_000, rng=np.random.default_rng(i))
            for i in range(10)
        ]
        assert np.mean(estimates) == pytest.approx(0.4375, abs=0.02)

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_exact_on_random_graphs(self, seed):
        graph = random_graph(seed)
        exact = reliability_exact(graph, 0, 7)
        estimator = DynamicMCEstimator(graph, seed=seed)
        estimates = [
            estimator.estimate(0, 7, 2_000, rng=np.random.default_rng(i))
            for i in range(10)
        ]
        assert np.mean(estimates) == pytest.approx(exact, abs=0.025)

    def test_registered(self, diamond_graph):
        estimator = create_estimator("dynamic_mc", diamond_graph, seed=0)
        assert estimator.display_name == "DynamicMC"
        value = estimator.estimate(0, 3, 500)
        assert 0.0 <= value <= 1.0


class TestVarianceStory:
    """Proportional RHH < Dynamic MC ~ plain MC in variance (paper §2.4)."""

    @staticmethod
    def _variance(estimator, samples=150, runs=400):
        estimates = np.array(
            [
                estimator.estimate(0, 3, samples, rng=np.random.default_rng(i))
                for i in range(runs)
            ]
        )
        return float(estimates.var(ddof=1))

    def test_proportional_beats_binomial(self, diamond_graph):
        rhh = RecursiveSamplingEstimator(diamond_graph)
        bmc = DynamicMCEstimator(diamond_graph)
        assert self._variance(rhh) < self._variance(bmc)

    def test_binomial_close_to_plain_mc(self, diamond_graph):
        bmc = DynamicMCEstimator(diamond_graph)
        mc = MonteCarloEstimator(diamond_graph)
        bmc_variance = self._variance(bmc)
        mc_variance = self._variance(mc)
        # Same statistical family: variances agree within estimation noise.
        assert bmc_variance == pytest.approx(mc_variance, rel=0.5)


class TestAllocationParameter:
    def test_invalid_allocation_rejected(self, diamond_graph):
        with pytest.raises(ValueError):
            RecursiveSamplingEstimator(diamond_graph, allocation="psychic")

    def test_explicit_binomial_equals_dynamic_mc_class(self, diamond_graph):
        by_param = RecursiveSamplingEstimator(
            diamond_graph, allocation="binomial"
        )
        by_class = DynamicMCEstimator(diamond_graph)
        a = by_param.estimate(0, 3, 500, rng=np.random.default_rng(4))
        b = by_class.estimate(0, 3, 500, rng=np.random.default_rng(4))
        assert a == b
