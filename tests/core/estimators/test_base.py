"""Tests for the shared Estimator contract (validation, edge cases)."""

import numpy as np
import pytest

from repro.core.estimators.base import QueryStatistics
from repro.core.registry import PAPER_ESTIMATORS, create_estimator


@pytest.fixture(params=PAPER_ESTIMATORS + ["lp"])
def any_estimator(request, diamond_graph):
    return create_estimator(request.param, diamond_graph, seed=0)


class TestEstimatorContract:
    def test_source_equals_target_is_one(self, any_estimator):
        assert any_estimator.estimate(1, 1, 10) == 1.0

    def test_estimate_in_unit_interval(self, any_estimator):
        value = any_estimator.estimate(0, 3, 100)
        assert 0.0 <= value <= 1.0

    def test_disconnected_target_is_zero(self, any_estimator):
        # Node 3 has no out-edges in the diamond; 3 -> 0 is impossible.
        assert any_estimator.estimate(3, 0, 100) == 0.0

    def test_invalid_source_rejected(self, any_estimator):
        with pytest.raises(ValueError):
            any_estimator.estimate(-1, 3, 10)

    def test_invalid_target_rejected(self, any_estimator):
        with pytest.raises(ValueError):
            any_estimator.estimate(0, 99, 10)

    def test_invalid_samples_rejected(self, any_estimator):
        with pytest.raises(ValueError):
            any_estimator.estimate(0, 3, 0)

    def test_rng_override_reproducible(self, any_estimator):
        a = any_estimator.estimate(0, 3, 200, rng=np.random.default_rng(5))
        b = any_estimator.estimate(0, 3, 200, rng=np.random.default_rng(5))
        assert a == b

    def test_memory_bytes_positive(self, any_estimator):
        any_estimator.estimate(0, 3, 50)
        assert any_estimator.memory_bytes() > 0

    def test_query_statistics_populated(self, any_estimator):
        any_estimator.estimate(0, 3, 50)
        stats = any_estimator.last_query_statistics
        assert isinstance(stats, QueryStatistics)
        assert stats.samples_requested == 50

    def test_repr_mentions_class(self, any_estimator):
        assert type(any_estimator).__name__ in repr(any_estimator)


class TestQueryStatistics:
    def test_merge_accumulates(self):
        a = QueryStatistics(samples_requested=10, edges_probed=5, recursion_depth=2)
        b = QueryStatistics(samples_requested=3, edges_probed=7, recursion_depth=4)
        a.merge(b)
        assert a.samples_requested == 13
        assert a.edges_probed == 12
        assert a.recursion_depth == 4
