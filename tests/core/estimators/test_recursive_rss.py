"""Tests for recursive stratified sampling (RSS)."""

import numpy as np
import pytest

from repro.core.estimators.monte_carlo import MonteCarloEstimator
from repro.core.estimators.recursive_rss import RecursiveStratifiedEstimator
from repro.core.exact import reliability_exact
from repro.core.graph import UncertainGraph
from tests.conftest import random_graph


class TestAccuracy:
    def test_matches_exact_on_diamond(self, diamond_graph):
        estimator = RecursiveStratifiedEstimator(
            diamond_graph, stratum_edges=2, seed=0
        )
        estimate = estimator.estimate(0, 3, 20_000)
        assert estimate == pytest.approx(0.4375, abs=0.01)

    @pytest.mark.parametrize("stratum_edges", [1, 2, 4, 8])
    def test_matches_exact_for_any_stratum_count(self, stratum_edges):
        graph = random_graph(2)
        exact = reliability_exact(graph, 0, 7)
        estimator = RecursiveStratifiedEstimator(
            graph, stratum_edges=stratum_edges
        )
        estimates = [
            estimator.estimate(0, 7, 2_000, rng=np.random.default_rng(i))
            for i in range(10)
        ]
        assert np.mean(estimates) == pytest.approx(exact, abs=0.025)

    def test_r_larger_than_edges_falls_back_to_mc(self, diamond_graph):
        # |E| < r: Alg. 5 line 2 requires the non-recursive fallback.
        estimator = RecursiveStratifiedEstimator(
            diamond_graph, stratum_edges=50, seed=0
        )
        value = estimator.estimate(0, 3, 500)
        assert estimator.last_query_statistics.fallback_calls == 1
        assert 0.0 <= value <= 1.0

    def test_unbiased_with_tiny_probabilities(self):
        graph = UncertainGraph(3, [(0, 1, 0.01), (1, 2, 0.9)])
        exact = 0.009
        estimator = RecursiveStratifiedEstimator(graph, stratum_edges=1)
        estimates = [
            estimator.estimate(0, 2, 100, rng=np.random.default_rng(i))
            for i in range(3_000)
        ]
        assert np.mean(estimates) == pytest.approx(exact, abs=0.002)

    def test_certain_path_short_circuits(self):
        graph = UncertainGraph(3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 0.1)])
        estimator = RecursiveStratifiedEstimator(graph, stratum_edges=2, seed=0)
        assert estimator.estimate(0, 2, 100) == 1.0


class TestStratumDesign:
    def test_stratum_masses_partition_unity(self):
        # Table 1: pi_0 + sum_i pi_i = 1 for any probabilities.
        probabilities = np.array([0.3, 0.8, 0.05, 0.5])
        absent_prefix = np.concatenate(
            ([1.0], np.cumprod(1.0 - probabilities))
        )
        masses = np.empty(len(probabilities) + 1)
        masses[0] = absent_prefix[-1]
        masses[1:] = probabilities * absent_prefix[:-1]
        assert masses.sum() == pytest.approx(1.0)
        assert (masses >= 0).all()

    def test_lower_variance_than_mc(self, diamond_graph):
        # Theorems 4.2/4.3 of Li et al.
        samples = 200
        rss = RecursiveStratifiedEstimator(diamond_graph, stratum_edges=2)
        mc = MonteCarloEstimator(diamond_graph)
        rss_estimates = np.array(
            [
                rss.estimate(0, 3, samples, rng=np.random.default_rng(i))
                for i in range(300)
            ]
        )
        mc_estimates = np.array(
            [
                mc.estimate(0, 3, samples, rng=np.random.default_rng(7_000 + i))
                for i in range(300)
            ]
        )
        assert rss_estimates.var(ddof=1) < mc_estimates.var(ddof=1)

    def test_probability_one_selected_edge(self):
        # A certain edge in the stratum set: strata forcing it absent have
        # zero mass and must be skipped without error.
        graph = UncertainGraph(3, [(0, 1, 1.0), (1, 2, 0.5)])
        estimator = RecursiveStratifiedEstimator(graph, stratum_edges=2)
        estimates = [
            estimator.estimate(0, 2, 500, rng=np.random.default_rng(i))
            for i in range(20)
        ]
        assert np.mean(estimates) == pytest.approx(0.5, abs=0.05)


class TestParameters:
    def test_invalid_parameters_rejected(self, diamond_graph):
        with pytest.raises(ValueError):
            RecursiveStratifiedEstimator(diamond_graph, stratum_edges=0)
        with pytest.raises(ValueError):
            RecursiveStratifiedEstimator(diamond_graph, threshold=0)

    def test_recursion_depth_reported(self):
        graph = random_graph(4, node_count=10, edge_probability=0.35)
        estimator = RecursiveStratifiedEstimator(graph, stratum_edges=3, seed=0)
        estimator.estimate(0, 9, 2_000)
        assert estimator.last_query_statistics.recursion_depth >= 1

    def test_reproducible_with_same_stream(self, diamond_graph):
        estimator = RecursiveStratifiedEstimator(diamond_graph, stratum_edges=2)
        a = estimator.estimate(0, 3, 500, rng=np.random.default_rng(3))
        b = estimator.estimate(0, 3, 500, rng=np.random.default_rng(3))
        assert a == b
