"""Tests for the ProbTree FWD index: structure, losslessness, coupling."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.estimators.prob_tree import (
    ROOT_BAG,
    FWDProbTreeIndex,
    ProbTreeEstimator,
)
from repro.core.estimators.recursive_rhh import RecursiveSamplingEstimator
from repro.core.exact import reliability_exact
from repro.core.graph import UncertainGraph
from tests.conftest import random_graph, small_graph_parts


class TestIndexStructure:
    def test_every_node_covered_once_or_in_root(self, diamond_graph):
        index = FWDProbTreeIndex(diamond_graph)
        covered = set(index.bag_of_covered)
        assert covered.isdisjoint(index.root_nodes)
        assert covered | index.root_nodes == set(range(4))

    def test_bags_have_unique_covered_nodes(self):
        graph = random_graph(0, node_count=12, edge_probability=0.25)
        index = FWDProbTreeIndex(graph)
        covered = [bag.covered for bag in index.bags]
        assert len(covered) == len(set(covered))

    def test_parents_are_later_bags_or_root(self):
        graph = random_graph(1, node_count=12, edge_probability=0.25)
        index = FWDProbTreeIndex(graph)
        for bag in index.bags:
            assert bag.parent == ROOT_BAG or bag.parent > bag.bag_id

    def test_chain_decomposes_fully(self):
        # A path graph is a tree: width-1 eliminations leave a trivial root.
        graph = UncertainGraph(6, [(i, i + 1, 0.5) for i in range(5)])
        index = FWDProbTreeIndex(graph)
        assert len(index.bags) >= 4
        assert len(index.root_nodes) <= 2

    def test_dense_graph_keeps_core_in_root(self):
        # A 5-clique (undirected degree 4 > w) cannot be decomposed.
        edges = [
            (u, v, 0.5) for u in range(5) for v in range(5) if u != v
        ]
        graph = UncertainGraph(5, edges)
        index = FWDProbTreeIndex(graph)
        assert len(index.root_nodes) == 5
        assert not index.bags

    def test_invalid_width_rejected(self, diamond_graph):
        with pytest.raises(ValueError):
            FWDProbTreeIndex(diamond_graph, width=3)

    def test_statistics_keys(self, diamond_graph):
        stats = FWDProbTreeIndex(diamond_graph).statistics()
        assert {"bags", "height", "root_nodes", "root_edges"} <= set(stats)

    def test_size_bytes_positive(self, diamond_graph):
        assert FWDProbTreeIndex(diamond_graph).size_bytes() > 0

    def test_save_load_roundtrip(self, tmp_path):
        graph = random_graph(2, node_count=10, edge_probability=0.3)
        index = FWDProbTreeIndex(graph)
        path = tmp_path / "probtree.pkl"
        index.save(path)
        loaded = FWDProbTreeIndex.load(path, graph)
        assert len(loaded.bags) == len(index.bags)
        assert loaded.root_nodes == index.root_nodes
        assert loaded.root_edges == index.root_edges


class TestLosslessness:
    """The paper's w<=2 claim: the assembled query graph has *exactly* the
    original graph's s-t reliability."""

    @pytest.mark.parametrize("seed", range(8))
    def test_query_graph_preserves_reliability(self, seed):
        graph = random_graph(seed, node_count=7, edge_probability=0.3)
        index = FWDProbTreeIndex(graph)
        for source, target in [(0, 6), (1, 5), (6, 0)]:
            original = reliability_exact(graph, source, target)
            query_graph, s, t, _ = index.query_graph(source, target)
            assembled = reliability_exact(query_graph, s, t)
            assert assembled == pytest.approx(original, abs=1e-9), (
                f"seed={seed} pair=({source},{target})"
            )

    def test_chain_lossless(self):
        graph = UncertainGraph(6, [(i, i + 1, 0.7) for i in range(5)])
        index = FWDProbTreeIndex(graph)
        query_graph, s, t, _ = index.query_graph(0, 5)
        assert reliability_exact(query_graph, s, t) == pytest.approx(0.7**5)

    def test_bidirected_cycle_lossless(self):
        edges = []
        for i in range(5):
            j = (i + 1) % 5
            edges.append((i, j, 0.6))
            edges.append((j, i, 0.6))
        graph = UncertainGraph(5, edges)
        index = FWDProbTreeIndex(graph)
        original = reliability_exact(graph, 0, 2)
        query_graph, s, t, _ = index.query_graph(0, 2)
        assert reliability_exact(query_graph, s, t) == pytest.approx(
            original, abs=1e-9
        )

    @given(small_graph_parts)
    @settings(max_examples=40, deadline=None)
    def test_property_losslessness(self, parts):
        node_count, triples = parts
        graph = UncertainGraph(node_count, triples)
        if graph.edge_count > 12:
            return
        index = FWDProbTreeIndex(graph)
        original = reliability_exact(graph, 0, node_count - 1)
        query_graph, s, t, _ = index.query_graph(0, node_count - 1)
        assembled = reliability_exact(query_graph, s, t)
        assert assembled == pytest.approx(original, abs=1e-9)

    def test_query_graph_no_larger_than_original(self):
        graph = random_graph(3, node_count=14, edge_probability=0.2)
        index = FWDProbTreeIndex(graph)
        query_graph, _, _, _ = index.query_graph(0, 13)
        assert query_graph.node_count <= graph.node_count


class TestEstimator:
    def test_matches_exact(self, diamond_graph):
        estimator = ProbTreeEstimator(diamond_graph, seed=0)
        estimate = estimator.estimate(0, 3, 30_000)
        assert estimate == pytest.approx(0.4375, abs=0.015)

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_exact_on_random_graphs(self, seed):
        graph = random_graph(seed)
        exact = reliability_exact(graph, 0, 7)
        estimator = ProbTreeEstimator(graph, seed=seed)
        estimate = estimator.estimate(0, 7, 20_000)
        assert estimate == pytest.approx(exact, abs=0.025)

    def test_coupling_with_rhh(self, diamond_graph):
        # §3.8: ProbTree + recursive estimators.
        estimator = ProbTreeEstimator(
            diamond_graph,
            estimator_factory=lambda g: RecursiveSamplingEstimator(g),
            seed=0,
        )
        estimate = estimator.estimate(0, 3, 10_000)
        assert estimate == pytest.approx(0.4375, abs=0.02)

    def test_attach_index(self, diamond_graph):
        index = FWDProbTreeIndex(diamond_graph)
        estimator = ProbTreeEstimator(diamond_graph)
        estimator.attach_index(index)
        assert estimator.index is index

    def test_attach_foreign_index_rejected(self, diamond_graph, chain_graph):
        index = FWDProbTreeIndex(chain_graph)
        estimator = ProbTreeEstimator(diamond_graph)
        with pytest.raises(ValueError):
            estimator.attach_index(index)

    def test_memory_includes_index(self, diamond_graph):
        estimator = ProbTreeEstimator(diamond_graph, seed=0)
        before = estimator.memory_bytes()
        estimator.prepare()
        assert estimator.memory_bytes() > before

    def test_query_statistics_merged_from_inner(self, diamond_graph):
        estimator = ProbTreeEstimator(diamond_graph, seed=0)
        estimator.estimate(0, 3, 100)
        assert estimator.last_query_statistics.samples_requested >= 100


class TestLiftedGraphReuse:
    """The bag-pair keying behind the batch fast path."""

    def test_same_bags_share_a_lift_key(self):
        graph = random_graph(4, node_count=14, edge_probability=0.2)
        index = FWDProbTreeIndex(graph)
        for s in range(graph.node_count):
            for t in range(graph.node_count):
                key = index.lift_key(s, t)
                assert key == (
                    index.bag_of_covered.get(s, ROOT_BAG),
                    index.bag_of_covered.get(t, ROOT_BAG),
                )

    def test_lifted_graph_reproduces_query_graph(self):
        graph = random_graph(5, node_count=12, edge_probability=0.25)
        index = FWDProbTreeIndex(graph)
        for s, t in [(0, 11), (3, 7), (11, 0), (2, 2)]:
            lifted, node_map = index.lifted_graph(index.lift_key(s, t))
            q_graph, q_s, q_t, q_map = index.query_graph(s, t)
            assert node_map == q_map
            assert (q_s, q_t) == (node_map[s], node_map[t])
            assert lifted.node_count == q_graph.node_count
            np.testing.assert_array_equal(lifted.probs, q_graph.probs)

    def test_every_node_is_mapped(self):
        # Covered nodes live in their bag; everything else is root-alive —
        # so the lifted graph always contains both endpoints.
        graph = random_graph(6, node_count=10, edge_probability=0.3)
        index = FWDProbTreeIndex(graph)
        for s in range(graph.node_count):
            for t in range(graph.node_count):
                _, node_map = index.lifted_graph(index.lift_key(s, t))
                assert s in node_map and t in node_map


class TestBatchFastPath:
    """Bag-grouped batches: one lifted graph per (s, t) bag pair."""

    def test_duplicates_and_order_do_not_matter(self):
        graph = random_graph(7, node_count=10, edge_probability=0.3)
        estimator = ProbTreeEstimator(graph, seed=0)
        queries = [(0, 9, 200), (1, 8, 200), (0, 9, 200), (2, 7, 150)]
        forward = estimator.estimate_batch(queries, seed=11)
        assert forward[0] == forward[2]
        backward = ProbTreeEstimator(graph, seed=0).estimate_batch(
            list(reversed(queries)), seed=11
        )
        np.testing.assert_array_equal(forward, backward[::-1])

    def test_statistically_matches_exact_on_lossless_graphs(self):
        graph = random_graph(8, node_count=9, edge_probability=0.3)
        estimator = ProbTreeEstimator(graph, seed=0)
        estimates = estimator.estimate_batch([(0, 8, 2_000)], seed=3)
        exact = reliability_exact(graph, 0, 8)
        assert abs(estimates[0] - exact) < 0.06

    def test_rejects_hop_bounded_queries(self):
        graph = random_graph(9, node_count=8, edge_probability=0.3)
        estimator = ProbTreeEstimator(graph, seed=0)
        with pytest.raises(NotImplementedError, match="hop"):
            estimator.estimate_batch([(0, 7, 100, 2)], seed=1)

    def test_coupled_estimator_factory_is_honoured(self):
        graph = random_graph(10, node_count=9, edge_probability=0.3)
        estimator = ProbTreeEstimator(
            graph, seed=0,
            estimator_factory=lambda g: RecursiveSamplingEstimator(g, seed=0),
        )
        estimates = estimator.estimate_batch([(0, 8, 500)], seed=3)
        exact = reliability_exact(graph, 0, 8)
        assert abs(estimates[0] - exact) < 0.1

    def test_replays_bit_for_bit_under_one_seed(self):
        graph = random_graph(11, node_count=10, edge_probability=0.25)
        queries = [(0, 9, 300), (4, 2, 200)]
        a = ProbTreeEstimator(graph, seed=0).estimate_batch(queries, seed=5)
        b = ProbTreeEstimator(graph, seed=0).estimate_batch(queries, seed=5)
        np.testing.assert_array_equal(a, b)


class TestLiftCache:
    """The estimator-level LRU of assembled lifted graphs (ROADMAP item)."""

    def _estimator(self, seed=12, **options):
        graph = random_graph(seed, node_count=14, edge_probability=0.25)
        estimator = ProbTreeEstimator(graph, seed=0, **options)
        estimator.prepare()
        return estimator

    def test_per_query_path_hits_the_cache(self):
        estimator = self._estimator()
        rng = np.random.default_rng(0)
        estimator.estimate(0, 13, 50, rng=rng)
        assert estimator.lift_cache_statistics()["misses"] == 1
        estimator.estimate(0, 13, 50, rng=rng)
        stats = estimator.lift_cache_statistics()
        assert stats["hits"] == 1
        assert stats["misses"] == 1

    def test_batch_path_lifts_each_key_once(self):
        estimator = self._estimator()
        queries = [(0, 13, 50), (0, 13, 80), (3, 9, 50), (0, 13, 50)]
        estimator.estimate_batch(queries, seed=3)
        index = estimator.index
        distinct_keys = {
            index.lift_key(s, t) for s, t, *_ in queries
        }
        stats = estimator.lift_cache_statistics()
        assert stats["misses"] == len(distinct_keys)

    def test_batch_then_per_query_reuses_assemblies(self):
        estimator = self._estimator()
        estimator.estimate_batch([(0, 13, 50)], seed=3)
        misses = estimator.lift_cache_statistics()["misses"]
        estimator.estimate(0, 13, 50, rng=np.random.default_rng(0))
        stats = estimator.lift_cache_statistics()
        assert stats["misses"] == misses  # no re-assembly
        assert stats["hits"] >= 1

    def test_cached_estimates_are_bit_identical_to_uncached(self):
        graph = random_graph(13, node_count=14, edge_probability=0.25)
        cached = ProbTreeEstimator(graph, seed=0)
        uncached = ProbTreeEstimator(graph, seed=0, lift_cache_capacity=0)
        queries = [(0, 13, 200), (3, 9, 150), (0, 13, 200)]
        np.testing.assert_array_equal(
            cached.estimate_batch(queries, seed=5),
            uncached.estimate_batch(queries, seed=5),
        )
        assert cached.lift_cache_statistics()["size"] > 0
        assert uncached.lift_cache_statistics()["size"] == 0

    def test_capacity_bounds_the_cache(self):
        estimator = self._estimator(lift_cache_capacity=2)
        index = estimator.index
        keys = set()
        for s in range(estimator.graph.node_count):
            for t in range(estimator.graph.node_count):
                if s != t:
                    keys.add(index.lift_key(s, t))
        for key in keys:
            estimator.lifted_graph(key)
        assert len(estimator._lift_cache) <= 2
        assert estimator.lift_cache_statistics()["size"] <= 2

    def test_lru_eviction_order(self):
        estimator = self._estimator(lift_cache_capacity=2)
        index = estimator.index
        keys = []
        for s in range(estimator.graph.node_count):
            for t in range(estimator.graph.node_count):
                key = index.lift_key(s, t)
                if key not in keys:
                    keys.append(key)
                if len(keys) == 3:
                    break
            if len(keys) == 3:
                break
        assert len(keys) == 3, "graph too small for three distinct keys"
        a, b, c = keys
        estimator.lifted_graph(a)
        estimator.lifted_graph(b)
        estimator.lifted_graph(a)  # refresh a: b is now least recent
        estimator.lifted_graph(c)  # evicts b
        assert a in estimator._lift_cache
        assert c in estimator._lift_cache
        assert b not in estimator._lift_cache

    def test_prepare_clears_the_cache(self):
        estimator = self._estimator()
        estimator.estimate(0, 13, 20, rng=np.random.default_rng(0))
        assert estimator.lift_cache_statistics()["size"] > 0
        estimator.prepare()
        assert estimator.lift_cache_statistics()["size"] == 0

    def test_negative_capacity_rejected(self):
        graph = random_graph(14, node_count=8, edge_probability=0.3)
        with pytest.raises(ValueError, match="lift_cache_capacity"):
            ProbTreeEstimator(graph, lift_cache_capacity=-1)

    def test_cached_graph_is_the_same_object(self):
        # Reuse keeps the memoised fingerprint, so downstream result
        # caches skip re-hashing the lifted graph too.
        estimator = self._estimator()
        key = estimator.index.lift_key(0, 13)
        first, _ = estimator.lifted_graph(key)
        second, _ = estimator.lifted_graph(key)
        assert first is second
