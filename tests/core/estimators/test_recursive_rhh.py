"""Tests for recursive sampling (RHH): correctness and variance reduction."""

import numpy as np
import pytest

from repro.core.estimators.monte_carlo import MonteCarloEstimator
from repro.core.estimators.recursive_rhh import RecursiveSamplingEstimator
from repro.core.exact import reliability_exact
from repro.core.graph import UncertainGraph
from tests.conftest import random_graph


class TestAccuracy:
    def test_matches_exact_on_diamond(self, diamond_graph):
        estimator = RecursiveSamplingEstimator(diamond_graph, seed=0)
        estimate = estimator.estimate(0, 3, 20_000)
        assert estimate == pytest.approx(0.4375, abs=0.01)

    def test_matches_exact_on_chain(self, chain_graph):
        estimator = RecursiveSamplingEstimator(chain_graph, seed=0)
        estimate = estimator.estimate(0, 3, 20_000)
        assert estimate == pytest.approx(0.8**3, abs=0.01)

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_exact_on_random_graphs(self, seed):
        graph = random_graph(seed)
        exact = reliability_exact(graph, 0, 7)
        estimator = RecursiveSamplingEstimator(graph, seed=seed)
        estimates = [
            estimator.estimate(0, 7, 2_000, rng=np.random.default_rng(i))
            for i in range(10)
        ]
        assert np.mean(estimates) == pytest.approx(exact, abs=0.02)

    def test_unbiased_with_tiny_probabilities(self):
        # Stochastic-rounding allocation must stay unbiased when P(e)*K < 1.
        graph = UncertainGraph(3, [(0, 1, 0.01), (1, 2, 0.9)])
        exact = 0.009
        estimator = RecursiveSamplingEstimator(graph)
        estimates = [
            estimator.estimate(0, 2, 100, rng=np.random.default_rng(i))
            for i in range(3_000)
        ]
        assert np.mean(estimates) == pytest.approx(exact, abs=0.002)

    def test_probability_one_chain(self):
        # Certain edges make the include chain deterministic.
        graph = UncertainGraph(5, [(i, i + 1, 1.0) for i in range(4)])
        estimator = RecursiveSamplingEstimator(graph, seed=0)
        assert estimator.estimate(0, 4, 100) == 1.0


class TestVarianceReduction:
    def test_lower_variance_than_mc(self, diamond_graph):
        # Theorem 2 of Jin et al.: proportional allocation reduces variance.
        samples = 200
        rhh = RecursiveSamplingEstimator(diamond_graph)
        mc = MonteCarloEstimator(diamond_graph)
        rhh_estimates = np.array(
            [
                rhh.estimate(0, 3, samples, rng=np.random.default_rng(i))
                for i in range(300)
            ]
        )
        mc_estimates = np.array(
            [
                mc.estimate(0, 3, samples, rng=np.random.default_rng(5_000 + i))
                for i in range(300)
            ]
        )
        assert rhh_estimates.var(ddof=1) < mc_estimates.var(ddof=1)

    def test_exhaustive_recursion_is_nearly_exact(self):
        # With a tiny graph and a deep budget, recursion enumerates almost
        # everything: single-run estimates land very close to exact.
        graph = random_graph(1, node_count=6, edge_probability=0.4)
        exact = reliability_exact(graph, 0, 5)
        estimator = RecursiveSamplingEstimator(graph, threshold=2)
        estimates = [
            estimator.estimate(0, 5, 4_000, rng=np.random.default_rng(i))
            for i in range(5)
        ]
        assert np.std(estimates) < 0.02
        assert np.mean(estimates) == pytest.approx(exact, abs=0.02)


class TestParameters:
    def test_threshold_validation(self, diamond_graph):
        with pytest.raises(ValueError):
            RecursiveSamplingEstimator(diamond_graph, threshold=0)

    def test_large_threshold_degrades_to_mc(self, diamond_graph):
        # threshold >= K: the fallback fires immediately; behaviour is MC.
        estimator = RecursiveSamplingEstimator(diamond_graph, threshold=10_000)
        value = estimator.estimate(0, 3, 500, rng=np.random.default_rng(0))
        assert estimator.last_query_statistics.fallback_calls == 1
        assert 0.0 <= value <= 1.0

    def test_recursion_depth_reported(self, diamond_graph):
        estimator = RecursiveSamplingEstimator(diamond_graph, seed=0)
        estimator.estimate(0, 3, 1_000)
        assert estimator.last_query_statistics.recursion_depth >= 1

    def test_state_reset_between_queries(self, diamond_graph):
        estimator = RecursiveSamplingEstimator(diamond_graph, seed=0)
        first = estimator.estimate(0, 3, 500, rng=np.random.default_rng(1))
        second = estimator.estimate(0, 3, 500, rng=np.random.default_rng(1))
        assert first == second  # identical stream => identical result

    def test_deep_chain_does_not_overflow(self):
        # Include-chains as long as the graph: the recursion-limit guard
        # must absorb chain-shaped graphs.
        length = 1_500
        graph = UncertainGraph(
            length + 1, [(i, i + 1, 1.0) for i in range(length)]
        )
        estimator = RecursiveSamplingEstimator(graph, seed=0)
        assert estimator.estimate(0, length, 10) == 1.0
