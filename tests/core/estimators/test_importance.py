"""Tests for importance sampling with calibrated occurrence counts (IS)."""

import numpy as np
import pytest

from repro.core.estimators.importance import (
    DEFAULT_CALIBRATION_WORLDS,
    PROPOSAL_CEILING,
    ImportanceSamplingEstimator,
)
from repro.core.estimators.monte_carlo import MonteCarloEstimator
from repro.core.exact import reliability_exact
from repro.core.graph import UncertainGraph
from tests.conftest import random_graph


class TestAccuracy:
    def test_matches_exact_on_diamond(self, diamond_graph):
        estimator = ImportanceSamplingEstimator(diamond_graph, seed=0)
        estimate = estimator.estimate(0, 3, 20_000)
        assert estimate == pytest.approx(0.4375, abs=0.01)

    def test_unbiased_on_random_graph(self):
        graph = random_graph(2)
        exact = reliability_exact(graph, 0, 7)
        estimator = ImportanceSamplingEstimator(graph)
        estimates = [
            estimator.estimate(0, 7, 2_000, rng=np.random.default_rng(i))
            for i in range(10)
        ]
        assert np.mean(estimates) == pytest.approx(exact, abs=0.025)

    def test_unbiased_with_rare_bridge_edge(self):
        # The regime IS exists for: the only path crosses a rare edge, so
        # plain MC almost never hits while the tilted proposal does — the
        # reweighted mean must still centre on the exact value.
        graph = UncertainGraph(3, [(0, 1, 0.02), (1, 2, 0.9)])
        exact = 0.018
        estimator = ImportanceSamplingEstimator(graph, tilt=1.0)
        estimates = [
            estimator.estimate(0, 2, 400, rng=np.random.default_rng(i))
            for i in range(400)
        ]
        assert np.mean(estimates) == pytest.approx(exact, rel=0.15)

    def test_certain_edges_handled(self):
        # p == 1 edges: absent-edge log factor must be exactly 0, not NaN.
        graph = UncertainGraph(3, [(0, 1, 1.0), (1, 2, 0.5)])
        estimator = ImportanceSamplingEstimator(graph, seed=0)
        estimates = [
            estimator.estimate(0, 2, 500, rng=np.random.default_rng(i))
            for i in range(20)
        ]
        assert np.mean(estimates) == pytest.approx(0.5, abs=0.05)

    def test_estimate_clipped_to_unit_range(self):
        graph = UncertainGraph(2, [(0, 1, 0.999)])
        estimator = ImportanceSamplingEstimator(graph)
        for i in range(30):
            value = estimator.estimate(
                0, 1, 50, rng=np.random.default_rng(i)
            )
            assert 0.0 <= value <= 1.0


class TestCalibration:
    def test_lazy_then_prepared(self, diamond_graph):
        estimator = ImportanceSamplingEstimator(diamond_graph, seed=0)
        assert not estimator.prepared
        estimator.estimate(0, 3, 100)
        assert estimator.prepared
        assert estimator.edge_occurrences is not None
        assert estimator.edge_occurrences.shape == (4,)

    def test_calibration_pure_in_graph_and_seed(self, diamond_graph):
        first = ImportanceSamplingEstimator(diamond_graph, seed=11)
        second = ImportanceSamplingEstimator(diamond_graph, seed=99)
        first.prepare()
        second.prepare()
        # Different estimator seeds, same calibration seed: identical
        # counts and proposal — calibration never draws from the query rng.
        np.testing.assert_array_equal(
            first.edge_occurrences, second.edge_occurrences
        )
        np.testing.assert_array_equal(
            first._proposal[0], second._proposal[0]
        )

    def test_proposal_tilts_only_upward_and_respects_ceiling(self):
        graph = random_graph(5, node_count=10, edge_probability=0.4)
        estimator = ImportanceSamplingEstimator(graph, tilt=1.0)
        estimator.prepare()
        proposal = estimator._proposal[0]
        probs = graph.probs
        assert (proposal >= probs).all()
        assert (proposal <= np.maximum(probs, PROPOSAL_CEILING)).all()

    def test_apply_update_rebuild_equals_fresh_build(self, diamond_graph):
        from repro.core.mutation import apply_update

        estimator = ImportanceSamplingEstimator(diamond_graph, seed=0)
        estimator.prepare()
        mutation = apply_update(diamond_graph, set_edges=((1, 3, 0.9),))
        mode = estimator.apply_update(
            mutation.graph,
            touched_edges=mutation.touched_edges,
            structural=mutation.structural,
        )
        assert mode == "rebuilt"
        fresh = ImportanceSamplingEstimator(mutation.graph, seed=0)
        value_updated = estimator.estimate(
            0, 3, 500, rng=np.random.default_rng(3)
        )
        value_fresh = fresh.estimate(0, 3, 500, rng=np.random.default_rng(3))
        assert value_updated == value_fresh

    def test_reproducible_with_same_stream(self, diamond_graph):
        estimator = ImportanceSamplingEstimator(diamond_graph)
        a = estimator.estimate(0, 3, 500, rng=np.random.default_rng(3))
        b = estimator.estimate(0, 3, 500, rng=np.random.default_rng(3))
        assert a == b


class TestVariance:
    def test_lower_variance_than_mc_on_rare_path(self):
        graph = UncertainGraph(3, [(0, 1, 0.05), (1, 2, 0.8)])
        samples = 300
        importance = ImportanceSamplingEstimator(graph, tilt=1.0)
        mc = MonteCarloEstimator(graph)
        is_estimates = np.array(
            [
                importance.estimate(
                    0, 2, samples, rng=np.random.default_rng(i)
                )
                for i in range(200)
            ]
        )
        mc_estimates = np.array(
            [
                mc.estimate(
                    0, 2, samples, rng=np.random.default_rng(9_000 + i)
                )
                for i in range(200)
            ]
        )
        assert is_estimates.var(ddof=1) < mc_estimates.var(ddof=1)


class TestParameters:
    def test_invalid_parameters_rejected(self, diamond_graph):
        with pytest.raises(ValueError):
            ImportanceSamplingEstimator(diamond_graph, calibration_worlds=0)
        with pytest.raises(ValueError):
            ImportanceSamplingEstimator(diamond_graph, tilt=1.5)
        with pytest.raises(ValueError):
            ImportanceSamplingEstimator(diamond_graph, tilt=-0.1)

    def test_defaults(self, diamond_graph):
        estimator = ImportanceSamplingEstimator(diamond_graph)
        assert estimator.calibration_worlds == DEFAULT_CALIBRATION_WORLDS
        assert estimator.key == "importance"
        assert estimator.batch_path == "fallback"
        assert not estimator.uses_index

    def test_memory_reported(self, diamond_graph):
        estimator = ImportanceSamplingEstimator(diamond_graph, seed=0)
        before = estimator.memory_bytes()
        estimator.prepare()
        assert estimator.memory_bytes() > before
