"""Tests for the MC sampling estimator (the baseline of the study)."""

import numpy as np
import pytest

from repro.core.estimators.monte_carlo import MonteCarloEstimator
from repro.core.exact import reliability_exact
from repro.util.stats import binomial_variance
from tests.conftest import random_graph


class TestAccuracy:
    def test_matches_exact_on_diamond(self, diamond_graph):
        estimator = MonteCarloEstimator(diamond_graph, seed=0)
        estimate = estimator.estimate(0, 3, 50_000)
        assert estimate == pytest.approx(0.4375, abs=0.01)

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_exact_on_random_graphs(self, seed):
        graph = random_graph(seed)
        exact = reliability_exact(graph, 0, 7)
        estimator = MonteCarloEstimator(graph, seed=100 + seed)
        estimate = estimator.estimate(0, 7, 30_000)
        assert estimate == pytest.approx(exact, abs=0.02)

    def test_unbiasedness(self, chain_graph):
        # Mean of many independent small-K estimates converges to exact.
        exact = 0.8**3
        estimator = MonteCarloEstimator(chain_graph)
        estimates = [
            estimator.estimate(0, 3, 50, rng=np.random.default_rng(i))
            for i in range(400)
        ]
        standard_error = np.sqrt(binomial_variance(exact, 50) / len(estimates))
        assert np.mean(estimates) == pytest.approx(exact, abs=4 * standard_error)

    def test_empirical_variance_is_binomial(self, chain_graph):
        # Var = R(1-R)/K (paper Eq. 4).
        exact = 0.8**3
        samples = 100
        estimator = MonteCarloEstimator(chain_graph)
        estimates = np.array(
            [
                estimator.estimate(0, 3, samples, rng=np.random.default_rng(i))
                for i in range(600)
            ]
        )
        expected = binomial_variance(exact, samples)
        assert estimates.var(ddof=1) == pytest.approx(expected, rel=0.25)


class TestBehaviour:
    def test_estimate_granularity_is_one_over_k(self, diamond_graph):
        # A hit-and-miss estimate with K samples is a multiple of 1/K.
        estimator = MonteCarloEstimator(diamond_graph, seed=3)
        value = estimator.estimate(0, 3, 7)
        assert (value * 7) == pytest.approx(round(value * 7))

    def test_certain_path_always_one(self):
        from repro.core.graph import UncertainGraph

        graph = UncertainGraph(3, [(0, 1, 1.0), (1, 2, 1.0)])
        estimator = MonteCarloEstimator(graph, seed=0)
        assert estimator.estimate(0, 2, 100) == 1.0
