"""Failure-injection and edge-case tests across all estimators.

The six estimators must agree not only on typical graphs but on the
degenerate shapes real data contains: certain edges, stars, parallel-edge
inputs, repeated interleaved queries, and budgets far exceeding the world
count.
"""

import numpy as np
import pytest

from repro.core.graph import UncertainGraph
from repro.core.registry import PAPER_ESTIMATORS, create_estimator

ALL_KEYS = PAPER_ESTIMATORS + ["lp"]


def make(key, graph, **options):
    if key == "rss":
        options.setdefault("stratum_edges", 3)
    return create_estimator(key, graph, seed=0, **options)


@pytest.fixture(params=ALL_KEYS)
def key(request):
    """Every estimator, including the deliberately biased original LP."""
    return request.param


@pytest.fixture(params=PAPER_ESTIMATORS)
def unbiased_key(request):
    """Only the unbiased estimators — for accuracy assertions (the
    uncorrected LP overestimates by design; that is Fig. 5's point)."""
    return request.param


class TestCertainGraphs:
    def test_all_edges_certain(self, key):
        graph = UncertainGraph(
            4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 1.0)]
        )
        estimator = make(key, graph)
        assert estimator.estimate(0, 3, 200) == 1.0

    def test_certain_cycle(self, key):
        edges = [(i, (i + 1) % 5, 1.0) for i in range(5)]
        graph = UncertainGraph(5, edges)
        estimator = make(key, graph)
        assert estimator.estimate(0, 4, 100) == 1.0

    def test_near_certain_long_chain(self, key):
        graph = UncertainGraph(30, [(i, i + 1, 0.999) for i in range(29)])
        estimator = make(key, graph)
        value = estimator.estimate(0, 29, 500)
        assert value > 0.9


class TestStarGraphs:
    def test_out_star_leaf_reliability(self, unbiased_key):
        graph = UncertainGraph(6, [(0, leaf, 0.4) for leaf in range(1, 6)])
        estimator = make(unbiased_key, graph)
        values = [
            estimator.estimate(0, 3, 2_000, rng=np.random.default_rng(i))
            for i in range(5)
        ]
        assert np.mean(values) == pytest.approx(0.4, abs=0.05)

    def test_in_star_source_is_leaf(self, unbiased_key):
        graph = UncertainGraph(6, [(leaf, 0, 0.4) for leaf in range(1, 6)])
        estimator = make(unbiased_key, graph)
        value = estimator.estimate(3, 0, 2_000, rng=np.random.default_rng(0))
        assert value == pytest.approx(0.4, abs=0.05)

    def test_leaf_to_leaf_is_zero(self, key):
        graph = UncertainGraph(6, [(0, leaf, 0.9) for leaf in range(1, 6)])
        estimator = make(key, graph)
        assert estimator.estimate(1, 2, 300) == 0.0


class TestParallelAndLoopInputs:
    def test_parallel_edges_merged_before_estimation(self, unbiased_key):
        # Two parallel 0.5 edges OR-merge to 0.75.
        graph = UncertainGraph(2, [(0, 1, 0.5), (0, 1, 0.5)])
        estimator = make(unbiased_key, graph)
        values = [
            estimator.estimate(0, 1, 2_000, rng=np.random.default_rng(i))
            for i in range(5)
        ]
        assert np.mean(values) == pytest.approx(0.75, abs=0.04)

    def test_self_loops_ignored(self, unbiased_key):
        graph = UncertainGraph(3, [(0, 0, 0.9), (0, 1, 0.6), (1, 1, 0.9)])
        estimator = make(unbiased_key, graph)
        values = [
            estimator.estimate(0, 1, 2_000, rng=np.random.default_rng(i))
            for i in range(5)
        ]
        assert np.mean(values) == pytest.approx(0.6, abs=0.04)


class TestQueryIsolation:
    def test_interleaved_pairs_do_not_leak_state(self, key, diamond_graph):
        estimator = make(key, diamond_graph)
        first_a = estimator.estimate(0, 3, 400, rng=np.random.default_rng(1))
        estimator.estimate(1, 3, 400, rng=np.random.default_rng(2))
        estimator.estimate(3, 0, 400, rng=np.random.default_rng(3))
        second_a = estimator.estimate(0, 3, 400, rng=np.random.default_rng(1))
        assert first_a == second_a

    def test_many_sequential_queries_stay_bounded(self, key, diamond_graph):
        estimator = make(key, diamond_graph)
        for run in range(20):
            value = estimator.estimate(
                0, 3, 100, rng=np.random.default_rng(run)
            )
            assert 0.0 <= value <= 1.0

    def test_prepare_is_idempotent(self, key, diamond_graph):
        estimator = make(key, diamond_graph)
        estimator.prepare()
        estimator.prepare()
        value = estimator.estimate(0, 3, 200, rng=np.random.default_rng(0))
        assert 0.0 <= value <= 1.0


class TestExtremeBudgets:
    def test_single_sample(self, key, diamond_graph):
        estimator = make(key, diamond_graph)
        value = estimator.estimate(0, 3, 1, rng=np.random.default_rng(0))
        assert 0.0 <= value <= 1.0

    def test_budget_exceeding_world_count(self, unbiased_key):
        # 2 edges -> 4 worlds; K = 500 must still work and be accurate.
        graph = UncertainGraph(3, [(0, 1, 0.7), (1, 2, 0.7)])
        estimator = make(unbiased_key, graph)
        values = [
            estimator.estimate(0, 2, 500, rng=np.random.default_rng(i))
            for i in range(8)
        ]
        assert np.mean(values) == pytest.approx(0.49, abs=0.05)


class TestTinyProbabilities:
    def test_near_impossible_edge(self, key):
        graph = UncertainGraph(2, [(0, 1, 1e-9)])
        estimator = make(key, graph)
        assert estimator.estimate(0, 1, 500) == pytest.approx(0.0, abs=0.01)

    def test_mixed_magnitudes(self, unbiased_key):
        # NetHEPT-style: probabilities spanning two orders of magnitude.
        graph = UncertainGraph(
            4, [(0, 1, 0.001), (0, 2, 0.1), (1, 3, 0.9), (2, 3, 0.1)]
        )
        estimator = make(unbiased_key, graph)
        exact = 1 - (1 - 0.001 * 0.9) * (1 - 0.1 * 0.1)
        values = [
            estimator.estimate(0, 3, 3_000, rng=np.random.default_rng(i))
            for i in range(6)
        ]
        assert np.mean(values) == pytest.approx(exact, abs=0.01)
