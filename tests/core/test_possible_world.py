"""Tests for possible-world sampling and the BFS reachability kernel."""

import numpy as np
import pytest

from repro.core.graph import UncertainGraph
from repro.core.possible_world import (
    EDGE_ABSENT,
    EDGE_PRESENT,
    ReachabilitySampler,
    forced_from_mask,
    reachable_in_world,
    sample_world,
    world_probability,
)
from tests.conftest import random_graph


class TestSampleWorld:
    def test_shape_and_dtype(self, diamond_graph):
        mask = sample_world(diamond_graph, 0)
        assert mask.shape == (4,)
        assert mask.dtype == bool

    def test_certain_edges_always_present(self):
        graph = UncertainGraph(2, [(0, 1, 1.0)])
        for seed in range(5):
            assert sample_world(graph, seed)[0]

    def test_edge_frequency_matches_probability(self, diamond_graph):
        rng = np.random.default_rng(0)
        hits = np.zeros(4)
        trials = 20_000
        for _ in range(trials):
            hits += sample_world(diamond_graph, rng)
        np.testing.assert_allclose(hits / trials, diamond_graph.probs, atol=0.02)


class TestWorldProbability:
    def test_all_present(self, chain_graph):
        mask = np.ones(3, dtype=bool)
        assert world_probability(chain_graph, mask) == pytest.approx(0.8**3)

    def test_all_absent(self, chain_graph):
        mask = np.zeros(3, dtype=bool)
        assert world_probability(chain_graph, mask) == pytest.approx(0.2**3)

    def test_masses_sum_to_one(self, diamond_graph):
        total = 0.0
        for bits in range(16):
            mask = np.array([(bits >> i) & 1 for i in range(4)], dtype=bool)
            total += world_probability(diamond_graph, mask)
        assert total == pytest.approx(1.0)

    def test_wrong_shape_rejected(self, diamond_graph):
        with pytest.raises(ValueError):
            world_probability(diamond_graph, np.ones(3, dtype=bool))


class TestReachableInWorld:
    def test_source_equals_target(self, diamond_graph):
        assert reachable_in_world(diamond_graph, np.zeros(4, dtype=bool), 2, 2)

    def test_full_world_reachable(self, diamond_graph):
        assert reachable_in_world(diamond_graph, np.ones(4, dtype=bool), 0, 3)

    def test_empty_world_unreachable(self, diamond_graph):
        assert not reachable_in_world(diamond_graph, np.zeros(4, dtype=bool), 0, 3)

    def test_single_path(self, diamond_graph):
        # Only the 0->1->3 path present.
        mask = np.zeros(4, dtype=bool)
        # CSR order: (0,1), (0,2), (1,3), (2,3)
        mask[0] = True
        mask[2] = True
        assert reachable_in_world(diamond_graph, mask, 0, 3)
        assert not reachable_in_world(diamond_graph, mask, 2, 3)

    def test_direction_respected(self, chain_graph):
        mask = np.ones(3, dtype=bool)
        assert not reachable_in_world(chain_graph, mask, 3, 0)


class TestReachabilitySampler:
    def test_estimate_matches_series_formula(self, chain_graph):
        sampler = ReachabilitySampler(chain_graph)
        estimate = sampler.estimate(0, 3, 40_000, np.random.default_rng(0))
        assert estimate == pytest.approx(0.8**3, abs=0.01)

    def test_estimate_matches_parallel_formula(self, diamond_graph):
        sampler = ReachabilitySampler(diamond_graph)
        estimate = sampler.estimate(0, 3, 40_000, np.random.default_rng(1))
        assert estimate == pytest.approx(0.4375, abs=0.01)

    def test_source_equals_target(self, diamond_graph):
        sampler = ReachabilitySampler(diamond_graph)
        assert sampler.sample(1, 1, np.random.default_rng(0))

    def test_disconnected_returns_zero(self):
        graph = UncertainGraph(3, [(0, 1, 0.9)])
        sampler = ReachabilitySampler(graph)
        assert sampler.estimate(0, 2, 500, np.random.default_rng(0)) == 0.0

    def test_invalid_samples_rejected(self, diamond_graph):
        sampler = ReachabilitySampler(diamond_graph)
        with pytest.raises(ValueError):
            sampler.estimate(0, 3, 0, np.random.default_rng(0))

    def test_forced_present_short_circuits(self, chain_graph):
        sampler = ReachabilitySampler(chain_graph)
        forced = np.full(3, EDGE_PRESENT, dtype=np.int8)
        estimate = sampler.estimate(0, 3, 200, np.random.default_rng(0), forced)
        assert estimate == 1.0

    def test_forced_absent_blocks(self, chain_graph):
        sampler = ReachabilitySampler(chain_graph)
        forced = np.zeros(3, dtype=np.int8)
        forced[1] = EDGE_ABSENT  # cut the chain at 1 -> 2
        estimate = sampler.estimate(0, 3, 200, np.random.default_rng(0), forced)
        assert estimate == 0.0

    def test_forced_mixed_conditioning(self, diamond_graph):
        # Condition on the upper path absent: R = P(0->2)P(2->3) = 0.25.
        sampler = ReachabilitySampler(diamond_graph)
        forced = np.zeros(4, dtype=np.int8)
        forced[0] = EDGE_ABSENT  # (0,1)
        estimate = sampler.estimate(
            0, 3, 40_000, np.random.default_rng(2), forced
        )
        assert estimate == pytest.approx(0.25, abs=0.01)

    def test_matches_world_mask_semantics(self):
        # The fused lazy kernel must agree with explicit world enumeration
        # in distribution: compare estimates on a random graph.
        graph = random_graph(3)
        sampler = ReachabilitySampler(graph)
        fused = sampler.estimate(0, 7, 30_000, np.random.default_rng(0))
        rng = np.random.default_rng(1)
        hits = sum(
            reachable_in_world(graph, sample_world(graph, rng), 0, 7)
            for _ in range(30_000)
        )
        assert fused == pytest.approx(hits / 30_000, abs=0.015)


class TestReachTargets:
    """The multi-target sweep used by the batch engine (repro.engine)."""

    def test_matches_single_target_indicator(self):
        graph = random_graph(5)
        sampler = ReachabilitySampler(graph)
        rng = np.random.default_rng(0)
        targets = np.arange(graph.node_count)
        for _ in range(50):
            mask = sample_world(graph, rng)
            reached = sampler.reach_targets(
                0, targets, forced=forced_from_mask(mask)
            )
            for target in targets:
                assert reached[target] == reachable_in_world(
                    graph, mask, 0, int(target)
                )

    def test_source_in_targets_always_reached(self, chain_graph):
        sampler = ReachabilitySampler(chain_graph)
        forced = np.full(3, EDGE_ABSENT, dtype=np.int8)
        reached = sampler.reach_targets(1, np.array([1, 3]), forced=forced)
        assert reached.tolist() == [True, False]

    def test_max_hops_bounds_the_sweep(self, chain_graph):
        sampler = ReachabilitySampler(chain_graph)
        forced = np.full(3, EDGE_PRESENT, dtype=np.int8)
        reached = sampler.reach_targets(
            0, np.array([1, 2, 3]), forced=forced, max_hops=2
        )
        assert reached.tolist() == [True, True, False]

    def test_requires_rng_or_forced(self, chain_graph):
        sampler = ReachabilitySampler(chain_graph)
        with pytest.raises(ValueError):
            sampler.reach_targets(0, np.array([3]))

    def test_probabilistic_mode_matches_sample(self, diamond_graph):
        # With an rng and no forcing, reach_targets on a single target is
        # the same Bernoulli draw as sample() under the same stream.
        sampler = ReachabilitySampler(diamond_graph)
        hits_multi = sum(
            sampler.reach_targets(
                0, np.array([3]), rng=np.random.default_rng(i)
            )[0]
            for i in range(500)
        )
        hits_single = sum(
            sampler.sample(0, 3, np.random.default_rng(i)) for i in range(500)
        )
        assert hits_multi == hits_single
