"""Tests for the polynomial-time reliability bounds."""

import pytest
from hypothesis import given, settings

from repro.core.bounds import (
    min_cut_upper_bound,
    most_reliable_path,
    reliability_bounds,
)
from repro.core.exact import reliability_exact
from repro.core.graph import UncertainGraph
from tests.conftest import random_graph, small_graph_parts


class TestMostReliablePath:
    def test_chain(self, chain_graph):
        bound = most_reliable_path(chain_graph, 0, 3)
        assert bound.probability == pytest.approx(0.8**3)
        assert bound.path == (0, 1, 2, 3)

    def test_picks_more_reliable_detour(self):
        # Direct edge 0.1 vs two-hop 0.9 * 0.9 = 0.81.
        graph = UncertainGraph(
            3, [(0, 2, 0.1), (0, 1, 0.9), (1, 2, 0.9)]
        )
        bound = most_reliable_path(graph, 0, 2)
        assert bound.probability == pytest.approx(0.81)
        assert bound.path == (0, 1, 2)

    def test_unreachable(self):
        graph = UncertainGraph(3, [(0, 1, 0.5)])
        bound = most_reliable_path(graph, 0, 2)
        assert bound.probability == 0.0
        assert bound.path == ()

    def test_source_equals_target(self, diamond_graph):
        bound = most_reliable_path(diamond_graph, 1, 1)
        assert bound.probability == 1.0
        assert bound.path == (1,)

    def test_certain_edges(self):
        graph = UncertainGraph(3, [(0, 1, 1.0), (1, 2, 1.0)])
        assert most_reliable_path(graph, 0, 2).probability == 1.0


class TestMinCutUpperBound:
    def test_single_edge(self):
        graph = UncertainGraph(2, [(0, 1, 0.37)])
        bound = min_cut_upper_bound(graph, 0, 1)
        assert bound.probability == pytest.approx(0.37)
        assert bound.cut == ((0, 1),)

    def test_chain_uses_one_link(self, chain_graph):
        bound = min_cut_upper_bound(chain_graph, 0, 3)
        assert bound.probability == pytest.approx(0.8)
        assert len(bound.cut) == 1

    def test_diamond_cut(self, diamond_graph):
        # Any cut needs two edges of probability 0.5:
        # bound = 1 - 0.5^2 = 0.75.
        bound = min_cut_upper_bound(diamond_graph, 0, 3)
        assert bound.probability == pytest.approx(0.75)
        assert len(bound.cut) == 2

    def test_unreachable_gives_zero(self):
        graph = UncertainGraph(3, [(0, 1, 0.5)])
        bound = min_cut_upper_bound(graph, 0, 2)
        assert bound.probability == 0.0

    def test_certain_path_gives_trivial_bound(self):
        graph = UncertainGraph(3, [(0, 1, 1.0), (1, 2, 1.0)])
        bound = min_cut_upper_bound(graph, 0, 2)
        assert bound.probability == 1.0
        assert bound.cut == ()


class TestBracketing:
    @pytest.mark.parametrize("seed", range(6))
    def test_bounds_bracket_exact(self, seed):
        graph = random_graph(seed, node_count=7, edge_probability=0.35)
        exact = reliability_exact(graph, 0, 6)
        lower, upper = reliability_bounds(graph, 0, 6)
        assert lower - 1e-9 <= exact <= upper + 1e-9, (lower, exact, upper)

    @given(small_graph_parts)
    @settings(max_examples=40, deadline=None)
    def test_property_bounds_bracket_exact(self, parts):
        node_count, triples = parts
        graph = UncertainGraph(node_count, triples)
        if graph.edge_count > 12:
            return
        exact = reliability_exact(graph, 0, node_count - 1)
        lower, upper = reliability_bounds(graph, 0, node_count - 1)
        assert lower - 1e-9 <= exact <= upper + 1e-9

    def test_bounds_tight_on_single_path(self):
        # For a simple path both bounds coincide with the exact value.
        graph = UncertainGraph(4, [(0, 1, 0.9), (1, 2, 0.8), (2, 3, 0.7)])
        lower, upper = reliability_bounds(graph, 0, 3)
        assert lower == pytest.approx(0.9 * 0.8 * 0.7)
        assert upper == pytest.approx(0.7)  # weakest link
