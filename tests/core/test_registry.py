"""Tests for the estimator registry and recommendation API."""

import pytest

from repro.core.estimators.base import Estimator
from repro.core.recommend import (
    INDEX_STAR_RATINGS,
    STAR_RATINGS,
    overall_recommendation,
    recommend_estimator,
)
from repro.core.registry import (
    PAPER_ESTIMATORS,
    create_estimator,
    display_name,
    estimator_class,
    estimator_keys,
    register_estimator,
)


class TestRegistry:
    def test_paper_estimators_has_six(self):
        assert len(PAPER_ESTIMATORS) == 6

    def test_all_keys_resolvable(self):
        for key in estimator_keys():
            assert issubclass(estimator_class(key), Estimator)

    def test_uncorrected_lp_registered_but_not_default(self):
        assert "lp" in estimator_keys()
        assert "lp" not in PAPER_ESTIMATORS

    def test_unknown_key_rejected(self):
        with pytest.raises(KeyError, match="unknown estimator"):
            estimator_class("bogus")

    def test_create_with_options(self, diamond_graph):
        estimator = create_estimator("rhh", diamond_graph, threshold=7)
        assert estimator.threshold == 7

    def test_display_names_match_paper(self):
        expected = {"mc": "MC", "bfs_sharing": "BFSSharing", "prob_tree": "ProbTree",
                    "lp_plus": "LP+", "rhh": "RHH", "rss": "RSS"}
        for key, name in expected.items():
            assert display_name(key) == name

    def test_register_custom_estimator(self, diamond_graph):
        class Constant(Estimator):
            key = "constant_test"
            display_name = "Constant"

            def _estimate(self, source, target, samples, rng):
                return 0.5

        register_estimator(Constant)
        estimator = create_estimator("constant_test", diamond_graph)
        assert estimator.estimate(0, 3, 10) == 0.5
        # Re-registering the same class is idempotent.
        register_estimator(Constant)

    def test_register_conflicting_key_rejected(self):
        class Fake(Estimator):
            key = "mc"
            display_name = "Fake"

            def _estimate(self, source, target, samples, rng):
                return 0.0

        with pytest.raises(ValueError):
            register_estimator(Fake)

    def test_register_empty_key_rejected(self):
        class NoKey(Estimator):
            def _estimate(self, source, target, samples, rng):
                return 0.0

        with pytest.raises(ValueError):
            register_estimator(NoKey)


class TestRecommendation:
    def test_star_ratings_cover_all_six(self):
        assert set(STAR_RATINGS) == set(PAPER_ESTIMATORS)

    def test_index_ratings_cover_indexed_methods(self):
        assert set(INDEX_STAR_RATINGS) == {"bfs_sharing", "prob_tree"}

    def test_overall_recommendation_is_probtree(self):
        assert overall_recommendation() == "prob_tree"

    def test_memory_limited_fast_branch(self):
        rec = recommend_estimator(memory_limited=True, want_fastest=True)
        assert rec.estimators[0] == "prob_tree"
        assert "lp_plus" in rec.estimators

    def test_memory_limited_slow_branch(self):
        rec = recommend_estimator(memory_limited=True, want_fastest=False)
        assert rec.estimators == ("mc",)

    def test_large_memory_low_variance(self):
        rec = recommend_estimator(
            memory_limited=False, want_lowest_variance=True
        )
        assert set(rec.estimators) == {"rss", "rhh"}

    def test_large_memory_default(self):
        rec = recommend_estimator(memory_limited=False)
        assert rec.estimators == ("bfs_sharing",)

    def test_path_is_human_readable(self):
        rec = recommend_estimator(memory_limited=True)
        assert any("Memory" in step for step in rec.path)
        assert "=>" in str(rec)
