"""Tests for the copy-on-write graph mutation layer."""

import numpy as np
import pytest

from repro.core.graph import UncertainGraph
from repro.core.mutation import apply_update, set_edge_probability

EDGES = [(0, 1, 0.5), (1, 2, 0.25), (0, 2, 0.75), (2, 3, 0.4)]


def make_graph():
    return UncertainGraph(4, EDGES)


class TestApplyUpdate:
    def test_probability_set_builds_a_successor(self):
        graph = make_graph()
        mutation = apply_update(graph, set_edges=[(0, 1, 0.9)])
        assert mutation.graph is not graph
        assert mutation.graph.version == 1
        assert mutation.graph.edge_probability(0, 1) == 0.9
        assert mutation.edges_set == 1
        assert mutation.edges_added == 0
        assert mutation.edges_removed == 0
        assert not mutation.structural
        assert mutation.touched_edges == ((0, 1),)

    def test_predecessor_is_never_touched(self):
        graph = make_graph()
        probs_before = graph.probs.copy()
        apply_update(
            graph, set_edges=[(0, 1, 0.9), (3, 0, 0.1)], remove_edges=[(2, 3)]
        )
        assert graph.version == 0
        assert np.array_equal(graph.probs, probs_before)
        assert graph.edge_probability(3, 0) is None
        assert graph.edge_probability(2, 3) == 0.4

    def test_set_is_exact_assignment_not_or_merge(self):
        # The graph constructor OR-combines parallel edges; an update
        # *assigns*.  Setting (0, 1) to 0.5 on a graph where it is 0.5
        # must keep it exactly 0.5, not 1 - 0.5**2.
        graph = make_graph()
        mutation = apply_update(graph, set_edges=[(0, 1, 0.5)])
        assert mutation.graph.edge_probability(0, 1) == 0.5

    def test_new_pair_is_an_add(self):
        graph = make_graph()
        mutation = apply_update(graph, set_edges=[(3, 0, 0.3)])
        assert mutation.edges_added == 1
        assert mutation.edges_set == 0
        assert mutation.structural
        assert mutation.graph.edge_probability(3, 0) == 0.3
        assert mutation.graph.edge_count == graph.edge_count + 1

    def test_remove_existing_edge(self):
        graph = make_graph()
        mutation = apply_update(graph, remove_edges=[(2, 3)])
        assert mutation.edges_removed == 1
        assert mutation.structural
        assert mutation.graph.edge_probability(2, 3) is None
        assert mutation.graph.edge_count == graph.edge_count - 1

    def test_node_count_never_changes(self):
        graph = make_graph()
        mutation = apply_update(graph, set_edges=[(3, 0, 0.3)])
        assert mutation.graph.node_count == graph.node_count

    def test_versions_chain(self):
        graph = make_graph()
        first = apply_update(graph, set_edges=[(0, 1, 0.6)]).graph
        second = apply_update(first, set_edges=[(0, 1, 0.7)]).graph
        assert (graph.version, first.version, second.version) == (0, 1, 2)

    def test_touched_edges_are_sorted_and_deduplicated(self):
        graph = make_graph()
        mutation = apply_update(
            graph, set_edges=[(2, 3, 0.9), (0, 1, 0.9)], remove_edges=[(0, 2)]
        )
        assert mutation.touched_edges == ((0, 1), (0, 2), (2, 3))

    def test_empty_update_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            apply_update(make_graph())

    def test_remove_absent_edge_rejected(self):
        with pytest.raises(ValueError, match="does not exist"):
            apply_update(make_graph(), remove_edges=[(3, 0)])

    def test_duplicate_set_rejected(self):
        with pytest.raises(ValueError, match="more than once"):
            apply_update(
                make_graph(), set_edges=[(0, 1, 0.5), (0, 1, 0.6)]
            )

    def test_conflicting_set_and_remove_rejected(self):
        with pytest.raises(ValueError, match="both"):
            apply_update(
                make_graph(), set_edges=[(0, 1, 0.5)], remove_edges=[(0, 1)]
            )

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            apply_update(make_graph(), set_edges=[(1, 1, 0.5)])

    def test_out_of_range_node_rejected(self):
        with pytest.raises(ValueError):
            apply_update(make_graph(), set_edges=[(0, 99, 0.5)])

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            apply_update(make_graph(), set_edges=[(0, 1, 1.5)])
        with pytest.raises(ValueError):
            apply_update(make_graph(), set_edges=[(0, 1, 0.0)])

    def test_successor_equals_fresh_construction(self):
        # The successor must be indistinguishable from a graph built
        # from scratch with the merged edge list — CSR layout included,
        # since the fingerprint hashes the arrays directly.
        graph = make_graph()
        mutation = apply_update(
            graph, set_edges=[(0, 1, 0.9), (3, 1, 0.2)], remove_edges=[(2, 3)]
        )
        fresh = UncertainGraph(
            4, [(0, 1, 0.9), (1, 2, 0.25), (0, 2, 0.75), (3, 1, 0.2)]
        )
        assert np.array_equal(mutation.graph.indptr, fresh.indptr)
        assert np.array_equal(mutation.graph.targets, fresh.targets)
        assert np.array_equal(mutation.graph.probs, fresh.probs)


class TestSetEdgeProbability:
    def test_in_place_write_bumps_version(self):
        graph = make_graph()
        set_edge_probability(graph, 0, 1, 0.9)
        assert graph.version == 1
        assert graph.edge_probability(0, 1) == 0.9

    def test_absent_edge_rejected(self):
        with pytest.raises(ValueError, match="does not exist"):
            set_edge_probability(make_graph(), 3, 0, 0.5)

    def test_invalid_probability_rejected(self):
        graph = make_graph()
        with pytest.raises(ValueError):
            set_edge_probability(graph, 0, 1, 0.0)
        assert graph.version == 0  # failed writes do not bump
