"""Tests for the exact reliability oracles (enumeration vs factoring)."""

import pytest
from hypothesis import given, settings

from repro.core.exact import (
    reliability_by_enumeration,
    reliability_by_factoring,
    reliability_exact,
)
from repro.core.graph import UncertainGraph
from tests.conftest import random_graph, small_graph_parts


class TestClosedForms:
    def test_series_chain(self, chain_graph):
        expected = 0.8**3
        assert reliability_by_enumeration(chain_graph, 0, 3) == pytest.approx(expected)
        assert reliability_by_factoring(chain_graph, 0, 3) == pytest.approx(expected)

    def test_parallel_paths(self, diamond_graph):
        expected = 1 - (1 - 0.25) ** 2
        assert reliability_by_enumeration(diamond_graph, 0, 3) == pytest.approx(
            expected
        )
        assert reliability_by_factoring(diamond_graph, 0, 3) == pytest.approx(expected)

    def test_single_edge(self):
        graph = UncertainGraph(2, [(0, 1, 0.37)])
        assert reliability_exact(graph, 0, 1) == pytest.approx(0.37)

    def test_source_equals_target(self, diamond_graph):
        assert reliability_by_enumeration(diamond_graph, 2, 2) == 1.0
        assert reliability_by_factoring(diamond_graph, 2, 2) == 1.0

    def test_unreachable_is_zero(self):
        graph = UncertainGraph(3, [(0, 1, 0.9)])
        assert reliability_by_enumeration(graph, 0, 2) == 0.0
        assert reliability_by_factoring(graph, 0, 2) == 0.0

    def test_direction_matters(self, chain_graph):
        assert reliability_by_factoring(chain_graph, 3, 0) == 0.0

    def test_bridge_graph(self):
        # Wheatstone bridge: classic two-terminal reliability example.
        edges = [
            (0, 1, 0.9),
            (0, 2, 0.8),
            (1, 2, 0.7),  # bridge
            (1, 3, 0.6),
            (2, 3, 0.5),
        ]
        graph = UncertainGraph(4, edges)
        enum = reliability_by_enumeration(graph, 0, 3)
        fact = reliability_by_factoring(graph, 0, 3)
        assert enum == pytest.approx(fact)


class TestGuards:
    def test_enumeration_refuses_large_graphs(self):
        edges = [(i, i + 1, 0.5) for i in range(30)]
        graph = UncertainGraph(31, edges)
        with pytest.raises(ValueError):
            reliability_by_enumeration(graph, 0, 30)

    def test_factoring_depth_guard(self):
        edges = [(i, i + 1, 0.5) for i in range(30)]
        graph = UncertainGraph(31, edges)
        with pytest.raises(RecursionError):
            reliability_by_factoring(graph, 0, 30, max_depth=3)

    def test_exact_dispatch_small_uses_enumeration(self, diamond_graph):
        assert reliability_exact(diamond_graph, 0, 3) == pytest.approx(0.4375)

    def test_exact_dispatch_large_uses_factoring(self):
        edges = [(i, i + 1, 0.9) for i in range(20)]
        graph = UncertainGraph(21, edges)
        assert reliability_exact(graph, 0, 20) == pytest.approx(0.9**20)


class TestCrossValidation:
    @pytest.mark.parametrize("seed", range(6))
    def test_enumeration_equals_factoring_random(self, seed):
        graph = random_graph(seed, node_count=5, edge_probability=0.4)
        if graph.edge_count > 16:
            pytest.skip("graph too large for enumeration")
        enum = reliability_by_enumeration(graph, 0, 4)
        fact = reliability_by_factoring(graph, 0, 4)
        assert enum == pytest.approx(fact, abs=1e-12)

    @given(small_graph_parts)
    @settings(max_examples=40, deadline=None)
    def test_property_enumeration_equals_factoring(self, parts):
        node_count, triples = parts
        graph = UncertainGraph(node_count, triples)
        if graph.edge_count > 12:
            return
        enum = reliability_by_enumeration(graph, 0, node_count - 1)
        fact = reliability_by_factoring(graph, 0, node_count - 1)
        assert enum == pytest.approx(fact, abs=1e-12)

    @given(small_graph_parts)
    @settings(max_examples=30, deadline=None)
    def test_reliability_is_a_probability(self, parts):
        node_count, triples = parts
        graph = UncertainGraph(node_count, triples)
        value = reliability_by_factoring(graph, 0, node_count - 1)
        assert 0.0 <= value <= 1.0
