"""Tests for the UncertainGraph CSR structure and builder."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.graph import EdgeStatistics, GraphBuilder, UncertainGraph, or_combine
from tests.conftest import small_graph_parts


class TestOrCombine:
    def test_basic(self):
        assert or_combine(0.5, 0.5) == pytest.approx(0.75)

    def test_identity(self):
        assert or_combine(0.0, 0.3) == pytest.approx(0.3)

    def test_certain_edge_dominates(self):
        assert or_combine(1.0, 0.2) == pytest.approx(1.0)


class TestConstruction:
    def test_basic_csr_layout(self):
        graph = UncertainGraph(3, [(0, 1, 0.5), (0, 2, 0.4), (1, 2, 0.9)])
        assert graph.node_count == 3
        assert graph.edge_count == 3
        np.testing.assert_array_equal(graph.indptr, [0, 2, 3, 3])
        np.testing.assert_array_equal(graph.targets, [1, 2, 2])
        np.testing.assert_allclose(graph.probs, [0.5, 0.4, 0.9])

    def test_parallel_edges_or_merged(self):
        graph = UncertainGraph(2, [(0, 1, 0.5), (0, 1, 0.5)])
        assert graph.edge_count == 1
        assert graph.probs[0] == pytest.approx(0.75)

    def test_self_loops_dropped(self):
        graph = UncertainGraph(2, [(0, 0, 0.9), (0, 1, 0.5)])
        assert graph.edge_count == 1
        assert graph.targets[0] == 1

    def test_zero_probability_rejected(self):
        with pytest.raises(ValueError):
            UncertainGraph(2, [(0, 1, 0.0)])

    def test_out_of_range_node_rejected(self):
        with pytest.raises(ValueError):
            UncertainGraph(2, [(0, 5, 0.5)])

    def test_negative_node_count_rejected(self):
        with pytest.raises(ValueError):
            UncertainGraph(-1, [])

    def test_empty_graph(self):
        graph = UncertainGraph(0, [])
        assert graph.node_count == 0
        assert graph.edge_count == 0

    def test_isolated_nodes(self):
        graph = UncertainGraph(10, [(0, 1, 0.5)])
        assert graph.out_degree(5) == 0
        assert graph.in_degree(5) == 0


class TestAccessors:
    @pytest.fixture
    def graph(self) -> UncertainGraph:
        return UncertainGraph(
            4, [(0, 1, 0.1), (0, 2, 0.2), (1, 2, 0.3), (2, 3, 0.4), (3, 0, 0.5)]
        )

    def test_out_edges(self, graph):
        targets, probs = graph.out_edges(0)
        np.testing.assert_array_equal(targets, [1, 2])
        np.testing.assert_allclose(probs, [0.1, 0.2])

    def test_out_edge_ids(self, graph):
        assert list(graph.out_edge_ids(0)) == [0, 1]
        assert list(graph.out_edge_ids(3)) == [4]

    def test_edge_source(self, graph):
        assert [graph.edge_source(e) for e in range(5)] == [0, 0, 1, 2, 3]

    def test_edge_probability_lookup(self, graph):
        assert graph.edge_probability(0, 2) == pytest.approx(0.2)
        assert graph.edge_probability(2, 0) is None

    def test_iter_edges_roundtrip(self, graph):
        rebuilt = UncertainGraph(4, graph.iter_edges())
        assert rebuilt == graph

    def test_reverse_csr(self, graph):
        sources, edge_ids = graph.in_edges(2)
        assert sorted(sources.tolist()) == [0, 1]
        # Reverse edge ids must map back to forward probabilities.
        probs = sorted(graph.probs[edge_ids].tolist())
        assert probs == pytest.approx([0.2, 0.3])

    def test_degrees(self, graph):
        assert graph.out_degree(0) == 2
        assert graph.in_degree(0) == 1

    def test_memory_bytes_positive(self, graph):
        assert graph.memory_bytes() > 0


class TestBfsDistances:
    def test_chain_distances(self, chain_graph):
        distances = chain_graph.bfs_distances(0)
        np.testing.assert_array_equal(distances, [0, 1, 2, 3])

    def test_unreachable_is_minus_one(self):
        graph = UncertainGraph(3, [(0, 1, 0.5)])
        assert graph.bfs_distances(0)[2] == -1

    def test_max_hops_truncates(self, chain_graph):
        distances = chain_graph.bfs_distances(0, max_hops=2)
        np.testing.assert_array_equal(distances, [0, 1, 2, -1])

    def test_distances_ignore_probabilities(self):
        graph = UncertainGraph(2, [(0, 1, 1e-9)])
        assert graph.bfs_distances(0)[1] == 1


class TestStatistics:
    def test_uniform_probabilities(self):
        graph = UncertainGraph(3, [(0, 1, 0.5), (1, 2, 0.5)])
        stats = graph.edge_statistics()
        assert stats.mean == pytest.approx(0.5)
        assert stats.std == pytest.approx(0.0)
        assert stats.quartiles == pytest.approx((0.5, 0.5, 0.5))

    def test_empty_graph_statistics(self):
        stats = UncertainGraph(3, []).edge_statistics()
        assert stats.mean == 0.0

    def test_str_contains_mean(self):
        text = str(EdgeStatistics(0.25, 0.1, (0.1, 0.2, 0.3)))
        assert "0.25" in text


class TestSaveLoad:
    def test_roundtrip(self, tmp_path, diamond_graph):
        path = tmp_path / "graph.npz"
        diamond_graph.save(path)
        loaded = UncertainGraph.load(path)
        assert loaded == diamond_graph


class TestGraphBuilder:
    def test_incremental_build(self):
        builder = GraphBuilder()
        builder.add_edge(0, 1, 0.5)
        builder.add_edge(1, 4, 0.25)
        graph = builder.build()
        assert graph.node_count == 5
        assert graph.edge_count == 2

    def test_add_node_allocates_ids(self):
        builder = GraphBuilder()
        assert builder.add_node() == 0
        assert builder.add_node() == 1
        assert builder.build().node_count == 2

    def test_undirected_edge_adds_both_directions(self):
        builder = GraphBuilder()
        builder.add_undirected_edge(0, 1, 0.3)
        graph = builder.build()
        assert graph.edge_probability(0, 1) == pytest.approx(0.3)
        assert graph.edge_probability(1, 0) == pytest.approx(0.3)

    def test_edge_count_property(self):
        builder = GraphBuilder()
        builder.add_edge(0, 1, 0.5)
        assert builder.edge_count == 1


class TestGraphProperties:
    @given(small_graph_parts)
    @settings(max_examples=60, deadline=None)
    def test_csr_invariants(self, parts):
        node_count, triples = parts
        graph = UncertainGraph(node_count, triples)
        # indptr is monotone and bounds the edge arrays.
        assert (np.diff(graph.indptr) >= 0).all()
        assert graph.indptr[0] == 0
        assert graph.indptr[-1] == graph.edge_count
        # Probabilities are valid, no self-loops survive, targets in range.
        assert ((graph.probs > 0) & (graph.probs <= 1)).all()
        for u, v, _ in graph.iter_edges():
            assert u != v
            assert 0 <= v < node_count

    @given(small_graph_parts)
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_through_iter_edges(self, parts):
        node_count, triples = parts
        graph = UncertainGraph(node_count, triples)
        rebuilt = UncertainGraph(node_count, graph.iter_edges())
        assert rebuilt == graph
