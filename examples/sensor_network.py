"""Sensor-network scenario: connection quality with instant bounds.

The paper's first motivating application: "measuring the quality of
connections between two terminals in a sensor network".  Sensor links fail
probabilistically (interference, battery); we ask how reliably a field
sensor reaches the base station, bracketing the sampling estimate with the
polynomial-time bounds (most-reliable-path lower, min-cut upper) and
checking how a hop budget (battery-limited relaying) changes the picture.

Run:  python examples/sensor_network.py
"""

import numpy as np

from repro import UncertainGraph, create_estimator
from repro.core.bounds import min_cut_upper_bound, most_reliable_path
from repro.queries.distance_constrained import distance_profile


def build_sensor_field(width: int, seed: int) -> UncertainGraph:
    """A width x width sensor grid with distance-degraded radio links.

    Each sensor links to its 4-neighbourhood and, with some luck, one
    diagonal; link quality decays with local noise.
    """
    rng = np.random.default_rng(seed)
    edges = []

    def node(r, c):
        return r * width + c

    for r in range(width):
        for c in range(width):
            quality = float(np.clip(rng.normal(0.75, 0.15), 0.2, 0.98))
            if c + 1 < width:
                edges.append((node(r, c), node(r, c + 1), quality))
                edges.append((node(r, c + 1), node(r, c), quality))
            if r + 1 < width:
                edges.append((node(r, c), node(r + 1, c), quality))
                edges.append((node(r + 1, c), node(r, c), quality))
            if r + 1 < width and c + 1 < width and rng.random() < 0.3:
                diagonal = quality * 0.8
                edges.append((node(r, c), node(r + 1, c + 1), diagonal))
                edges.append((node(r + 1, c + 1), node(r, c), diagonal))
    return UncertainGraph(width * width, edges)


def main() -> None:
    width = 8
    graph = build_sensor_field(width, seed=5)
    field_sensor = 0  # far corner
    base_station = width * width - 1  # opposite corner
    print(f"sensor field: {graph}")

    # Instant polynomial-time bracket, before any sampling.
    lower = most_reliable_path(graph, field_sensor, base_station)
    upper = min_cut_upper_bound(graph, field_sensor, base_station)
    print(
        f"\nbounds: {lower.probability:.4f} <= "
        f"R(sensor, base) <= {upper.probability:.4f}"
    )
    print(f"  best relay route: {' -> '.join(map(str, lower.path))}")
    print(f"  weakest perimeter: {len(upper.cut)} links")

    # Sampling estimate (RSS: lowest-variance estimator).
    estimator = create_estimator("rss", graph, stratum_edges=10, seed=1)
    estimate = estimator.estimate(
        field_sensor, base_station, samples=2_000, rng=np.random.default_rng(2)
    )
    print(f"\nRSS estimate: R(sensor, base) ~= {estimate:.4f}")
    in_bracket = lower.probability - 0.02 <= estimate <= upper.probability + 0.02
    print(f"estimate within the bracket: {in_bracket}")

    # Hop-budget analysis: each relay costs battery, so the routing layer
    # caps hops; how much reliability does each extra hop buy?
    budget_cap = 2 * (width - 1) + 4
    profile = distance_profile(
        graph,
        field_sensor,
        base_station,
        max_distance=budget_cap,
        samples=1_500,
        rng=3,
    )
    print("\nhop budget vs delivery probability:")
    minimum_hops = 2 * (width - 1)
    for hops in range(minimum_hops - 2, budget_cap, 2):
        print(f"  <= {hops:2d} hops: {profile[hops - 1]:.4f}")
    print(
        "\nThe profile saturates once the budget clears the grid distance — "
        "extra relays past that buy little (the paper's distance-constrained "
        "query, §2.4/§2.9)."
    )


if __name__ == "__main__":
    main()
