"""Social-influence scenario: convergence-aware reliability evaluation.

The paper's other motivating application: "evaluating information diffusion
in a social influence network".  Under the independent-cascade model, the
probability that user t is influenced by user s equals the s-t reliability
of the influence graph.  This example runs the paper's convergence protocol
(rho_K < 1e-3) on the LastFM analogue, showing that different estimators
need different sample sizes — the study's central methodological point.

Run:  python examples/social_influence.py
"""

from repro.core.registry import create_estimator, display_name
from repro.datasets.queries import generate_workload
from repro.datasets.suite import load_dataset
from repro.experiments.convergence import ConvergenceCriterion, run_convergence


def main() -> None:
    dataset = load_dataset("lastfm", scale="tiny", seed=0)
    graph = dataset.graph
    print(f"{dataset.title} analogue: {graph}")

    workload = generate_workload(graph, pair_count=5, hop_distance=2, seed=1)
    print(f"workload: {len(workload)} (influencer, fan) pairs, 2 hops apart\n")

    criterion = ConvergenceCriterion(k_start=250, k_step=250, k_max=1_500)
    print(
        f"{'estimator':12s} {'K@conv':>8s} {'influence prob':>15s} "
        f"{'s/query':>9s}"
    )
    for key in ("mc", "lp_plus", "rhh", "rss"):
        options = {"stratum_edges": 10} if key == "rss" else {}
        estimator = create_estimator(key, graph, seed=0, **options)
        result = run_convergence(
            estimator, workload, criterion=criterion, repeats=6, seed=0,
            stop_at_convergence=True,
        )
        point = result.convergence_point
        converged = result.converged_at or criterion.k_max
        print(
            f"{display_name(key):12s} {converged:8d} "
            f"{point.average_reliability:15.4f} {point.seconds_per_query:9.4f}"
        )

    print(
        "\nNote how the recursive estimators (RHH/RSS) reach the dispersion "
        "criterion with fewer samples than the MC family — the paper's "
        "argument against comparing all methods at one fixed K."
    )


if __name__ == "__main__":
    main()
