"""Road-network scenario: probabilistic path queries with an index.

The paper cites "probabilistic path queries in a road network" (Hua & Pei):
edges are road segments whose traversability degrades with congestion.
This example builds a grid road network with rush-hour edge probabilities,
then answers repeated origin-destination queries through a ProbTree index —
the paper's overall recommendation — comparing against plain MC.

Run:  python examples/road_network.py
"""

import time

import numpy as np

from repro.core.estimators.prob_tree import ProbTreeEstimator
from repro.core.registry import create_estimator
from repro.core.graph import GraphBuilder


def build_road_grid(rows: int, columns: int, seed: int):
    """A bidirected grid; probability = chance the segment is passable."""
    rng = np.random.default_rng(seed)
    builder = GraphBuilder(rows * columns)

    def node(r, c):
        return r * columns + c

    for r in range(rows):
        for c in range(columns):
            # Congestion is worse near the grid centre (the "city core").
            centrality = 1.0 - (
                abs(r - rows / 2) / rows + abs(c - columns / 2) / columns
            )
            passable = float(np.clip(0.95 - 0.5 * centrality * rng.random(), 0.2, 0.95))
            if c + 1 < columns:
                builder.add_undirected_edge(node(r, c), node(r, c + 1), passable)
            if r + 1 < rows:
                builder.add_undirected_edge(node(r, c), node(r + 1, c), passable)
    return builder.build()


def main() -> None:
    rows, columns = 12, 12
    graph = build_road_grid(rows, columns, seed=2)
    print(f"road grid: {graph}")

    origin = 0  # north-west corner
    destination = rows * columns - 1  # south-east corner
    samples = 800
    rng_seed = 9

    mc = create_estimator("mc", graph, seed=rng_seed)
    started = time.perf_counter()
    mc_value = mc.estimate(
        origin, destination, samples, rng=np.random.default_rng(1)
    )
    mc_time = time.perf_counter() - started

    prob_tree = ProbTreeEstimator(graph, seed=rng_seed)
    build_start = time.perf_counter()
    prob_tree.prepare()
    build_time = time.perf_counter() - build_start
    stats = prob_tree.index.statistics()

    started = time.perf_counter()
    pt_value = prob_tree.estimate(
        origin, destination, samples, rng=np.random.default_rng(1)
    )
    pt_time = time.perf_counter() - started

    print(
        f"\ncommute reliability {origin} -> {destination} "
        f"(prob. all segments of some route passable):"
    )
    print(f"  MC:        {mc_value:.4f}   ({mc_time:.3f} s)")
    print(f"  ProbTree:  {pt_value:.4f}   ({pt_time:.3f} s query)")
    print(
        f"\nProbTree index: {int(stats['bags'])} bags, height "
        f"{int(stats['height'])}, root keeps {int(stats['root_nodes'])} of "
        f"{graph.node_count} junctions (built in {build_time:.3f} s, "
        "reusable across queries)"
    )

    # A batch of commuter queries amortises the index.
    rng = np.random.default_rng(4)
    pairs = [
        (int(rng.integers(columns)),
         int(rng.integers((rows - 1) * columns, rows * columns)))
        for _ in range(5)
    ]
    print("\nbatch of commuter queries (ProbTree):")
    for s, t in pairs:
        value = prob_tree.estimate(s, t, samples, rng=np.random.default_rng(s * t))
        print(f"  R({s:3d} -> {t:3d}) = {value:.4f}")


if __name__ == "__main__":
    main()
