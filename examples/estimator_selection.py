"""Estimator selection: the paper's decision tree (Fig. 18) in practice.

Walks the Table 17 / Figure 18 guidance programmatically for several
deployment scenarios, then validates the recommendation empirically on a
small dataset by measuring variance, time, and memory for the recommended
and rejected estimators.

Run:  python examples/estimator_selection.py
"""

from repro.api import RecommendRequest, ReliabilityService
from repro.core.recommend import STAR_RATINGS, overall_recommendation
from repro.core.registry import display_name
from repro.datasets.queries import generate_workload
from repro.experiments.convergence import evaluate_at_k
from repro.experiments.memory import format_bytes
from repro.experiments.report import stars


def main() -> None:
    scenarios = [
        ("embedded device, low memory, latency-sensitive",
         RecommendRequest(memory_limited=True)),
        ("low memory, batch jobs (latency tolerant)",
         RecommendRequest(memory_limited=True, latency_tolerant=True)),
        ("big server, need tightest estimates",
         RecommendRequest(lowest_variance=True)),
        ("big server, pre-sampled worlds acceptable",
         RecommendRequest()),
    ]
    print("Decision-tree walks (paper Fig. 18):")
    for label, request in scenarios:
        response = ReliabilityService.recommend(request)
        print(f"  {label:48s} -> {', '.join(response.display_names)}")
    print(f"\noverall paper recommendation: {display_name(overall_recommendation())}")

    print("\nPaper star ratings (Table 17, online query processing):")
    print(
        f"  {'method':12s} {'variance':10s} {'accuracy':10s} "
        f"{'time':10s} {'memory':10s}"
    )
    for key, rating in STAR_RATINGS.items():
        print(
            f"  {display_name(key):12s} {stars(rating['variance']):10s} "
            f"{stars(rating['accuracy']):10s} {stars(rating['running_time']):10s} "
            f"{stars(rating['memory']):10s}"
        )

    # Empirical check on the AS-topology analogue, estimators built
    # through the facade's construction hook (the runner does the same).
    service = ReliabilityService.from_dataset("as_topology", "tiny", seed=0)
    dataset = service.dataset
    workload = generate_workload(dataset.graph, pair_count=4, hop_distance=2, seed=2)
    print(f"\nEmpirical profile on {dataset.title} analogue ({dataset.graph}):")
    print(f"  {'method':12s} {'variance':>12s} {'s/query':>9s} {'memory':>10s}")
    for key in ("mc", "prob_tree", "rss"):
        options = {"stratum_edges": 10} if key == "rss" else {}
        estimator = service.create_estimator(key, **options)
        estimator.prepare()
        point = evaluate_at_k(estimator, workload, samples=500, repeats=6, seed=0)
        print(
            f"  {display_name(key):12s} {point.average_variance:12.2e} "
            f"{point.seconds_per_query:9.4f} {format_bytes(point.memory_bytes):>10s}"
        )
    print(
        "\nRSS shows the variance win, MC the memory win, ProbTree the "
        "balanced profile — matching the paper's star table."
    )


if __name__ == "__main__":
    main()
