"""Estimator selection: the paper's decision tree (Fig. 18) in practice.

Walks the Table 17 / Figure 18 guidance programmatically for several
deployment scenarios, then validates the recommendation empirically on a
small dataset by measuring variance, time, and memory for the recommended
and rejected estimators.

Run:  python examples/estimator_selection.py
"""

from repro import recommend_estimator
from repro.core.recommend import STAR_RATINGS, overall_recommendation
from repro.core.registry import create_estimator, display_name
from repro.datasets.queries import generate_workload
from repro.datasets.suite import load_dataset
from repro.experiments.convergence import evaluate_at_k
from repro.experiments.memory import format_bytes
from repro.experiments.report import stars


def main() -> None:
    scenarios = [
        ("embedded device, low memory, latency-sensitive",
         dict(memory_limited=True, want_fastest=True)),
        ("low memory, batch jobs (latency tolerant)",
         dict(memory_limited=True, want_fastest=False)),
        ("big server, need tightest estimates",
         dict(memory_limited=False, want_lowest_variance=True)),
        ("big server, pre-sampled worlds acceptable",
         dict(memory_limited=False)),
    ]
    print("Decision-tree walks (paper Fig. 18):")
    for label, kwargs in scenarios:
        recommendation = recommend_estimator(**kwargs)
        names = ", ".join(display_name(k) for k in recommendation.estimators)
        print(f"  {label:48s} -> {names}")
    print(f"\noverall paper recommendation: {display_name(overall_recommendation())}")

    print("\nPaper star ratings (Table 17, online query processing):")
    print(
        f"  {'method':12s} {'variance':10s} {'accuracy':10s} "
        f"{'time':10s} {'memory':10s}"
    )
    for key, rating in STAR_RATINGS.items():
        print(
            f"  {display_name(key):12s} {stars(rating['variance']):10s} "
            f"{stars(rating['accuracy']):10s} {stars(rating['running_time']):10s} "
            f"{stars(rating['memory']):10s}"
        )

    # Empirical check on the AS-topology analogue.
    dataset = load_dataset("as_topology", scale="tiny", seed=0)
    workload = generate_workload(dataset.graph, pair_count=4, hop_distance=2, seed=2)
    print(f"\nEmpirical profile on {dataset.title} analogue ({dataset.graph}):")
    print(f"  {'method':12s} {'variance':>12s} {'s/query':>9s} {'memory':>10s}")
    for key in ("mc", "prob_tree", "rss"):
        options = {"stratum_edges": 10} if key == "rss" else {}
        estimator = create_estimator(key, dataset.graph, seed=0, **options)
        estimator.prepare()
        point = evaluate_at_k(estimator, workload, samples=500, repeats=6, seed=0)
        print(
            f"  {display_name(key):12s} {point.average_variance:12.2e} "
            f"{point.seconds_per_query:9.4f} {format_bytes(point.memory_bytes):>10s}"
        )
    print(
        "\nRSS shows the variance win, MC the memory win, ProbTree the "
        "balanced profile — matching the paper's star table."
    )


if __name__ == "__main__":
    main()
