"""P2P scenario: finding reliable peers and fragile relays.

The paper motivates s-t reliability with "identifying highly reliable
peers containing some file to transfer in a peer-to-peer network".  Peers
churn, so each overlay link exists with the probability that both
endpoints are online simultaneously.  This example:

1. ranks seed peers by transfer reliability to the downloader (top-k
   reliability search — BFS Sharing's original query);
2. extracts the "safe swarm" (reliable-set query at a threshold);
3. finds the relay peer whose churn would hurt the best transfer most
   (conditional-reliability failure impact).

Run:  python examples/p2p_file_transfer.py
"""

import numpy as np

from repro.api import ReliabilityService, TopKRequest
from repro.core.graph import GraphBuilder
from repro.queries import failure_impact, reliable_set


def build_overlay(peer_count: int, seed: int):
    """A P2P overlay: random graph with uptime-derived link probabilities."""
    rng = np.random.default_rng(seed)
    # Churn-heavy swarm: typical peer online less than half the time.
    uptime = np.clip(rng.beta(2.0, 2.6, size=peer_count), 0.05, 0.95)
    builder = GraphBuilder(peer_count)
    # Each peer keeps a couple of neighbour links (both directions: the
    # overlay is symmetric, and a link works only while both ends are up).
    for peer in range(peer_count):
        neighbor_count = int(rng.integers(2, 4))
        neighbors = rng.choice(peer_count, size=neighbor_count, replace=False)
        for neighbor in neighbors:
            if neighbor == peer:
                continue
            link = float(uptime[peer] * uptime[neighbor])
            builder.add_undirected_edge(peer, int(neighbor), link)
    return builder.build(), uptime


def main() -> None:
    peer_count = 120
    graph, uptime = build_overlay(peer_count, seed=8)
    downloader = 0
    print(f"P2P overlay: {graph}")
    print(f"downloader: peer {downloader} (uptime {uptime[downloader]:.2f})\n")

    # 1. The most reliably reachable peers (candidate seeds) — the
    # top-k endpoint of the service facade (BFS Sharing's original
    # query), identical to `repro topk` / the library call.
    service = ReliabilityService(graph, seed=1)
    ranking = service.topk(
        TopKRequest(source=downloader, k=8, samples=800)
    ).ranking
    print("top-8 seed candidates by transfer reliability:")
    for rank, (peer, reliability) in enumerate(ranking, start=1):
        print(
            f"  {rank}. peer {peer:3d}  R = {reliability:.3f}  "
            f"(uptime {uptime[peer]:.2f})"
        )

    # 2. The safe swarm: everything above a 50% delivery threshold.
    swarm = reliable_set(graph, downloader, threshold=0.5, samples=800, rng=2)
    print(f"\nsafe swarm (R >= 0.50): {len(swarm)} peers")

    # 3. Which relay's churn would hurt the best seed most?
    best_seed = ranking[0][0]
    distances = graph.bfs_distances(downloader, max_hops=2)
    relays = [int(v) for v in np.nonzero(distances == 1)[0]]
    impact = failure_impact(
        graph, downloader, best_seed, relays, samples=2_000, rng=3
    )
    print(f"\nchurn impact on transfer {downloader} -> {best_seed}:")
    for peer, conditional, drop in impact[:5]:
        print(
            f"  relay {peer:3d} offline: R falls to {conditional:.3f} "
            f"(drop {drop:+.3f})"
        )
    print(
        "\nTop-k, threshold, and conditional queries all run on the same "
        "estimator substrate (paper §2.3, §2.9)."
    )


if __name__ == "__main__":
    main()
