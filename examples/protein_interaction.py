"""Protein-interaction scenario: reliable neighbourhood of a protein.

The paper motivates s-t reliability with PPI networks: "finding other
proteins that are highly probable to be connected with a specific protein"
(Jin et al.'s motivating application).  This example builds the BioMine-like
analogue, picks a query protein, and ranks candidate proteins by their
estimated connection reliability — using RSS, the best-variance estimator,
with MC double-checking the top hit.

Run:  python examples/protein_interaction.py
"""

import numpy as np

from repro.core.registry import create_estimator
from repro.datasets.suite import load_dataset


def main() -> None:
    dataset = load_dataset("biomine", scale="tiny", seed=3)
    graph = dataset.graph
    print(f"{dataset.title} analogue: {graph}")

    rng = np.random.default_rng(11)
    # Query protein: a node with decent connectivity.
    degrees = np.array([graph.out_degree(v) for v in range(graph.node_count)])
    query_protein = int(np.argsort(degrees)[-5])

    # Candidates: proteins two hops away (direct partners are trivial).
    distances = graph.bfs_distances(query_protein, max_hops=2)
    candidates = np.nonzero(distances == 2)[0]
    rng.shuffle(candidates)
    candidates = candidates[:12]
    print(
        f"query protein: node {query_protein} "
        f"(out-degree {int(degrees[query_protein])}), "
        f"{len(candidates)} two-hop candidates\n"
    )

    estimator = create_estimator("rss", graph, stratum_edges=10, seed=5)
    scored = []
    for candidate in candidates:
        reliability = estimator.estimate(
            query_protein, int(candidate), samples=500, rng=rng
        )
        scored.append((reliability, int(candidate)))
    scored.sort(reverse=True)

    print(f"{'rank':>4s} {'protein':>8s} {'reliability':>12s}")
    for rank, (reliability, candidate) in enumerate(scored[:8], start=1):
        print(f"{rank:4d} {candidate:8d} {reliability:12.4f}")

    best_reliability, best = scored[0]
    mc = create_estimator("mc", graph, seed=6)
    check = mc.estimate(query_protein, best, samples=3_000, rng=rng)
    print(
        f"\nMC cross-check of top hit (protein {best}): "
        f"{check:.4f} vs RSS {best_reliability:.4f}"
    )


if __name__ == "__main__":
    main()
