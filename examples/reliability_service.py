"""The serving story end to end: facade -> warm -> batch -> HTTP.

One :class:`repro.api.ReliabilityService` owns the graph, the estimator
indexes, and the result cache; this script drives it the way a
production deployment would:

1. warm the cache with the popular (source, target) pairs;
2. answer a batch workload — served without sampling a single world;
3. start the HTTP layer (the `repro serve` machinery) in-process and
   answer the same workload over a real socket, bit-identically.

Run:  python examples/reliability_service.py
"""

import json
import threading
import urllib.request

from repro.api import (
    BatchRequest,
    QuerySpec,
    ReliabilityService,
    WarmRequest,
)
from repro.serve import create_server

POPULAR_PAIRS = (
    QuerySpec(0, 5, 400),
    QuerySpec(0, 7, 400),
    QuerySpec(3, 9, 400),
)


def main() -> None:
    service = ReliabilityService.from_dataset("lastfm", "tiny", seed=7)
    print(f"service: {service}\n")

    # 1. Cache warming (the `repro warm` command does exactly this).
    warm = service.warm(WarmRequest(queries=POPULAR_PAIRS))
    print(
        f"warm pass: {warm.newly_written} newly written, "
        f"{warm.already_warm} already warm "
        f"({warm.worlds_sampled} worlds sampled)"
    )

    # 2. The production workload: served from cache, zero sampling.
    response = service.estimate_batch(BatchRequest(queries=POPULAR_PAIRS))
    print(
        f"batch after warming: worlds_sampled="
        f"{response.engine.worlds_sampled}, "
        f"cached={[r.cached for r in response.results]}"
    )
    for row in response.results:
        print(f"  R({row.source}, {row.target}) ~= {row.estimate:.4f}")

    # 3. The same service behind HTTP (the `repro serve` machinery).
    server = create_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    body = json.dumps(
        {"queries": [[s.source, s.target, s.samples] for s in POPULAR_PAIRS]}
    ).encode("utf-8")
    request = urllib.request.Request(server.url + "/v1/batch", data=body)
    with urllib.request.urlopen(request, timeout=30) as http_response:
        over_http = json.loads(http_response.read())
    identical = [r["estimate"] for r in over_http["results"]] == [
        r.estimate for r in response.results
    ]
    print(
        f"\nHTTP at {server.url}: worlds_sampled="
        f"{over_http['engine']['worlds_sampled']}, "
        f"bit-identical to the in-process batch: {identical}"
    )
    with urllib.request.urlopen(server.url + "/v1/stats", timeout=30) as http_response:
        stats = json.loads(http_response.read())
    print(f"served requests so far: {stats['requests']}")

    server.shutdown()
    server.server_close()
    service.close()
    print(
        "\nCLI, HTTP, and library callers all route through this one "
        "facade — same requests, same caches, same bits."
    )


if __name__ == "__main__":
    main()
