"""Quickstart: estimate s-t reliability on a small uncertain graph.

Builds the classic "bridge" network, computes the exact reliability, and
compares all six estimators of the paper on the same query.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    PAPER_ESTIMATORS,
    UncertainGraph,
    create_estimator,
    reliability_exact,
)
from repro.core.registry import display_name


def main() -> None:
    # A Wheatstone-bridge uncertain network: two routes from 0 to 3 plus a
    # bridge edge 1 -> 2 that couples them.
    edges = [
        (0, 1, 0.9),
        (0, 2, 0.8),
        (1, 2, 0.7),
        (1, 3, 0.6),
        (2, 3, 0.5),
    ]
    graph = UncertainGraph(4, edges)
    source, target = 0, 3

    exact = reliability_exact(graph, source, target)
    print(f"graph: {graph}")
    print(f"exact reliability R({source}, {target}) = {exact:.6f}\n")

    samples = 20_000
    print(f"{'estimator':12s} {'estimate':>10s} {'abs error':>10s}")
    for key in PAPER_ESTIMATORS:
        options = {"stratum_edges": 3} if key == "rss" else {}
        estimator = create_estimator(key, graph, seed=7, **options)
        estimate = estimator.estimate(
            source, target, samples, rng=np.random.default_rng(42)
        )
        print(
            f"{display_name(key):12s} {estimate:10.5f} "
            f"{abs(estimate - exact):10.5f}"
        )

    print(
        "\nAll six are unbiased estimators of the same #P-hard quantity; "
        "they differ in variance, time, and memory (see the benchmarks)."
    )


if __name__ == "__main__":
    main()
