"""Quickstart: estimate s-t reliability through the public facade.

Builds the classic "bridge" network, computes the exact reliability, and
compares all six estimators of the paper on the same query — every
request routed through :class:`repro.api.ReliabilityService`, the same
facade behind the ``repro`` CLI and ``repro serve``.

Run:  python examples/quickstart.py
"""

from repro import (
    PAPER_ESTIMATORS,
    EstimateRequest,
    ReliabilityService,
    UncertainGraph,
    reliability_exact,
)


def main() -> None:
    # A Wheatstone-bridge uncertain network: two routes from 0 to 3 plus a
    # bridge edge 1 -> 2 that couples them.
    edges = [
        (0, 1, 0.9),
        (0, 2, 0.8),
        (1, 2, 0.7),
        (1, 3, 0.6),
        (2, 3, 0.5),
    ]
    graph = UncertainGraph(4, edges)
    source, target = 0, 3

    exact = reliability_exact(graph, source, target)
    print(f"graph: {graph}")
    print(f"exact reliability R({source}, {target}) = {exact:.6f}\n")

    # One long-lived service owns the graph, the estimators, and the
    # result caches; every transport (CLI, HTTP, this script) goes
    # through it.
    service = ReliabilityService(graph, seed=7)
    samples = 20_000
    print(f"{'estimator':12s} {'estimate':>10s} {'abs error':>10s}")
    for key in PAPER_ESTIMATORS:
        response = service.estimate(
            EstimateRequest(
                source=source, target=target, samples=samples, method=key
            )
        )
        print(
            f"{response.method_display:12s} {response.estimate:10.5f} "
            f"{abs(response.estimate - exact):10.5f}"
        )
    service.close()

    print(
        "\nAll six are unbiased estimators of the same #P-hard quantity; "
        "they differ in variance, time, and memory (see the benchmarks)."
    )


if __name__ == "__main__":
    main()
