"""Legacy-compat shim: all metadata lives in ``pyproject.toml``.

Kept so environments that invoke ``setup.py`` directly (old editable
installs, some packaging tools) still work; ``pip install -e .`` reads
``pyproject.toml`` through the setuptools backend either way.
"""

from setuptools import setup

setup()
