"""Packaging for the s-t reliability reproduction.

``pip install -e .`` exposes the ``repro`` package (src layout) and a
``repro`` console script (the CLI of :mod:`repro.cli`).  Kept as a plain
``setup.py`` so legacy editable installs work where ``wheel`` is absent.
"""

from setuptools import find_packages, setup

setup(
    name="repro-st-reliability",
    version="0.2.0",
    description=(
        "Reproduction of 'An In-Depth Comparison of s-t Reliability "
        "Algorithms over Uncertain Graphs' (VLDB 2019)"
    ),
    long_description=(
        "Six s-t reliability estimators over uncertain graphs, the paper's "
        "convergence/accuracy/runtime experiment protocol, and a batched "
        "multi-query engine that shares sampled possible worlds across a "
        "workload."
    ),
    author="paper-repo-growth",
    license="MIT",
    python_requires=">=3.9",
    install_requires=["numpy>=1.22"],
    extras_require={
        "test": ["pytest", "hypothesis", "pytest-benchmark"],
    },
    package_dir={"": "src"},
    packages=find_packages("src"),
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering",
    ],
)
