"""Figure 13(a-c): offline index costs for BFS Sharing vs ProbTree.

Three panels: index building time, index size, index loading time.  Shapes
to verify (paper §3.7): BFS Sharing builds faster (plain re-sampling) but
its index is larger (linear in K) and loads slower; ProbTree's index is
K-independent and smaller.
"""

import time

from repro.core.estimators.bfs_sharing import BFSSharingIndex
from repro.core.estimators.prob_tree import FWDProbTreeIndex
from repro.experiments.memory import format_bytes
from repro.experiments.report import format_table

from benchmarks._shared import (
    BENCH_DATASETS,
    BENCH_K_MAX,
    BENCH_SCALE,
    BENCH_SEED,
    emit,
    paper_note,
)
from repro.datasets.suite import load_dataset


def _timed(operation):
    started = time.perf_counter()
    result = operation()
    return result, time.perf_counter() - started


def test_fig13_index_costs(benchmark, tmp_path):
    rows = []
    sizes = {}
    for dataset_key in BENCH_DATASETS:
        dataset = load_dataset(dataset_key, BENCH_SCALE, BENCH_SEED)
        graph = dataset.graph

        bfs_index, bfs_build = _timed(
            lambda: BFSSharingIndex(graph, capacity=BENCH_K_MAX, rng=BENCH_SEED)
        )
        bfs_path = tmp_path / f"{dataset_key}_bfs.npz"
        bfs_index.save(bfs_path)
        _, bfs_load = _timed(lambda: BFSSharingIndex.load(bfs_path, graph))

        pt_index, pt_build = _timed(lambda: FWDProbTreeIndex(graph))
        pt_path = tmp_path / f"{dataset_key}_pt.pkl"
        pt_index.save(pt_path)
        _, pt_load = _timed(lambda: FWDProbTreeIndex.load(pt_path, graph))

        sizes[dataset_key] = (bfs_index.size_bytes(), pt_index.size_bytes())
        rows.append(
            [
                dataset.title,
                f"{bfs_build:.3f}",
                f"{pt_build:.3f}",
                format_bytes(bfs_index.size_bytes()),
                format_bytes(pt_index.size_bytes()),
                f"{bfs_load:.3f}",
                f"{pt_load:.3f}",
            ]
        )

    graph = load_dataset(BENCH_DATASETS[0], BENCH_SCALE, BENCH_SEED).graph
    benchmark.pedantic(
        lambda: BFSSharingIndex(graph, capacity=256, rng=0), rounds=3, iterations=1
    )

    emit(
        format_table(
            f"Figure 13: offline index costs (K={BENCH_K_MAX}, scale={BENCH_SCALE})",
            [
                "Dataset",
                "build BFSSh (s)",
                "build ProbTree (s)",
                "size BFSSh",
                "size ProbTree",
                "load BFSSh (s)",
                "load ProbTree (s)",
            ],
            rows,
        )
        + "\n"
        + paper_note(
            "BFS Sharing: faster build, larger K-linear index, slower load; "
            "ProbTree: K-independent index, comparable to graph size (§3.7)."
        ),
        filename="fig13_index_costs.txt",
    )

    # Shape assertion: the BFS Sharing index outweighs ProbTree's on every
    # dataset once K reaches the paper's working sizes (it stores K bits
    # per edge, vs ProbTree's K-independent structure).
    if BENCH_K_MAX >= 1_000:
        for dataset_key, (bfs_size, pt_size) in sizes.items():
            assert bfs_size > pt_size, (dataset_key, bfs_size, pt_size)
