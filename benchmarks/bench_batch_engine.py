"""Batch engine speedup: shared worlds vs the per-query loop.

Not a paper table — this benchmarks the repo's own batch query engine
(:mod:`repro.engine`), which operationalises the paper's central finding
(§2.2/§3.7: sampling dominates, shared sampled work is the lever) at
workload granularity.  On one medium suite graph and a >=20-query workload
at equal K it times:

* ``engine (bitset)``     — the fast path: every world sampled once,
  chunks packed into BFS-Sharing-style bit matrices, one fixpoint per
  distinct source per chunk;
* ``engine (per-world)``  — same shared worlds, swept one world at a time
  with the fused Alg. 1 kernel;
* ``sequential loop``     — the per-query loop over the *same* world
  stream: each query re-materialises its K worlds (the exactness oracle);
* ``lazy MC loop``        — the classic baseline: ``estimate()`` per query
  with lazy edge sampling and early termination (different stream, so
  estimates differ statistically but not in expectation).

Asserted: the three shared-stream strategies agree bit-for-bit, and the
bitset fast path beats the sequential loop.  Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_batch_engine.py -q -s

Environment knobs: ``REPRO_BATCH_SCALE`` (default medium),
``REPRO_BATCH_PAIRS`` (default 24), ``REPRO_BATCH_K`` (default 500).
"""

import os
import time

import numpy as np

from repro.core.estimators.base import Estimator
from repro.core.estimators.monte_carlo import MonteCarloEstimator
from repro.datasets.queries import generate_workload
from repro.datasets.suite import load_dataset
from repro.engine.batch import BatchEngine
from repro.experiments.report import format_dict_rows

from benchmarks._shared import BENCH_SEED, emit, paper_note

BATCH_SCALE = os.environ.get("REPRO_BATCH_SCALE", "medium")
BATCH_PAIRS = int(os.environ.get("REPRO_BATCH_PAIRS", "24"))
BATCH_K = int(os.environ.get("REPRO_BATCH_K", "500"))
BATCH_DATASET = os.environ.get("REPRO_BATCH_DATASET", "lastfm")


def _timed(callable_):
    started = time.perf_counter()
    result = callable_()
    return result, time.perf_counter() - started


def test_batch_engine_speedup():
    dataset = load_dataset(BATCH_DATASET, BATCH_SCALE, BENCH_SEED)
    graph = dataset.graph
    workload = generate_workload(
        graph, pair_count=BATCH_PAIRS, hop_distance=2, seed=BENCH_SEED
    )
    queries = [(source, target, BATCH_K) for source, target in workload]
    assert len(queries) >= 20

    bitset_engine = BatchEngine(graph, seed=BENCH_SEED)
    batch, batch_seconds = _timed(lambda: bitset_engine.run(queries))

    per_world_engine = BatchEngine(graph, seed=BENCH_SEED, sweep="per_world")
    per_world, per_world_seconds = _timed(
        lambda: per_world_engine.run(queries)
    )

    sequential, sequential_seconds = _timed(
        lambda: BatchEngine(graph, seed=BENCH_SEED).run_sequential(queries)
    )

    mc = MonteCarloEstimator(graph, seed=BENCH_SEED)
    _, lazy_seconds = _timed(
        lambda: Estimator.estimate_batch(mc, queries, seed=BENCH_SEED)
    )

    # Exactness: every shared-stream strategy produces identical estimates.
    np.testing.assert_array_equal(batch.estimates, sequential.estimates)
    np.testing.assert_array_equal(batch.estimates, per_world.estimates)

    # The point of the engine: beat the per-query loop at equal K.
    assert batch_seconds < sequential_seconds

    cached, cached_seconds = _timed(lambda: bitset_engine.run(queries))
    np.testing.assert_array_equal(batch.estimates, cached.estimates)
    assert cached.worlds_sampled == 0

    def row(strategy, seconds, worlds):
        return {
            "strategy": strategy,
            "time_s": f"{seconds:.3f}",
            "worlds": str(worlds),
            "speedup_vs_seq": f"{sequential_seconds / seconds:.2f}x",
        }

    emit(
        format_dict_rows(
            f"Batch engine: {len(queries)} queries, K={BATCH_K}, "
            f"{dataset.title} ({BATCH_SCALE}: n={graph.node_count}, "
            f"m={graph.edge_count})",
            [
                row("engine (bitset sweep)", batch_seconds,
                    batch.worlds_sampled),
                row("engine (per-world sweep)", per_world_seconds,
                    per_world.worlds_sampled),
                row("sequential shared-stream loop", sequential_seconds,
                    sequential.worlds_sampled),
                row("lazy MC per-query loop", lazy_seconds,
                    len(queries) * BATCH_K),
                row("engine re-run (cache hits)", cached_seconds, 0),
            ],
            ["strategy", "time_s", "worlds", "speedup_vs_seq"],
            headers=["Strategy", "Time (s)", "Worlds sampled",
                     "Speedup vs sequential"],
        ),
        filename="batch_engine.txt",
    )
    emit(paper_note(
        "sampling cost dominates (§2.2); sharing each sampled world across "
        "the workload is the batch analogue of §3.7's index amortisation"
    ))
