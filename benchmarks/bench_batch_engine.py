"""Batch engine speedup: shared worlds vs the per-query loop.

Not a paper table — this benchmarks the repo's own batch query engine
(:mod:`repro.engine`), which operationalises the paper's central finding
(§2.2/§3.7: sampling dominates, shared sampled work is the lever) at
workload granularity.  On one medium suite graph and a >=20-query workload
at equal K it times:

* ``engine (bitset)``     — the fast path: every world sampled once,
  chunks packed into BFS-Sharing-style bit matrices, one fixpoint per
  distinct source per chunk;
* ``engine (per-world)``  — same shared worlds, swept one world at a time
  with the fused Alg. 1 kernel;
* ``sequential loop``     — the per-query loop over the *same* world
  stream: each query re-materialises its K worlds (the exactness oracle);
* ``lazy MC loop``        — the classic baseline: ``estimate()`` per query
  with lazy edge sampling and early termination (different stream, so
  estimates differ statistically but not in expectation).

A second section scales the bitset sweep over worker processes
(``workers=1,2,4``): chunk ranges fan out over a ``ProcessPoolExecutor``
and, by the engine's determinism contract, every worker count produces
bit-identical estimates — asserted here, alongside >1.5x speedup at 4
workers when the hardware has the cores to show it.

Asserted: the three shared-stream strategies agree bit-for-bit, and the
bitset fast path beats the sequential loop.  Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_batch_engine.py -q -s

Environment knobs: ``REPRO_BATCH_SCALE`` (default medium),
``REPRO_BATCH_PAIRS`` (default 24), ``REPRO_BATCH_K`` (default 500),
``REPRO_BATCH_WORKERS`` (default "1,2,4").

A kernel section times the vectorized bitset kernels
(``kernels="vectorized"``, :mod:`repro.engine.kernels`) against the
per-node Python loops for both sweep strategies, asserting bit identity
throughout.  A third section measures the PR-3 estimator fast paths (BFS Sharing
served from engine world chunks; ProbTree's bag-grouped lifts) against
their per-query loops, and a fourth the persistent result cache: a cold
run that populates the SQLite sidecar vs a fresh-process-equivalent warm
run that must sample **zero** worlds.

Machine-readable results land in ``benchmarks/output/batch_engine.json``
(uploaded as a CI artifact).
"""

import json
import os
import tempfile
import time

import numpy as np

from repro.core.estimators.base import Estimator
from repro.core.estimators.bfs_sharing import BFSSharingEstimator
from repro.core.estimators.monte_carlo import MonteCarloEstimator
from repro.core.estimators.prob_tree import ProbTreeEstimator
from repro.datasets.queries import generate_workload
from repro.datasets.suite import load_dataset
from repro.engine.batch import BatchEngine
from repro.experiments.report import format_dict_rows

from benchmarks._shared import BENCH_SEED, OUTPUT_DIRECTORY, emit, paper_note

BATCH_SCALE = os.environ.get("REPRO_BATCH_SCALE", "medium")
BATCH_PAIRS = int(os.environ.get("REPRO_BATCH_PAIRS", "24"))
BATCH_K = int(os.environ.get("REPRO_BATCH_K", "500"))
BATCH_DATASET = os.environ.get("REPRO_BATCH_DATASET", "lastfm")
BATCH_WORKERS = [
    int(part)
    for part in os.environ.get("REPRO_BATCH_WORKERS", "1,2,4").split(",")
    if part.strip()
] or [1, 2, 4]
if BATCH_WORKERS[0] != 1:
    # The scaling table's baseline must be the serial sweep, whatever
    # worker counts the environment asks for.
    BATCH_WORKERS.insert(0, 1)

JSON_OUTPUT = OUTPUT_DIRECTORY / "batch_engine.json"

#: Collected by both benchmarks, flushed to JSON_OUTPUT as each finishes.
_JSON_PAYLOAD = {
    "dataset": BATCH_DATASET,
    "scale": BATCH_SCALE,
    "pairs": BATCH_PAIRS,
    "samples": BATCH_K,
    "cpu_count": os.cpu_count(),
}


def _write_json() -> None:
    OUTPUT_DIRECTORY.mkdir(exist_ok=True)
    JSON_OUTPUT.write_text(
        json.dumps(_JSON_PAYLOAD, indent=2) + "\n", encoding="utf-8"
    )


def _timed(callable_):
    started = time.perf_counter()
    result = callable_()
    return result, time.perf_counter() - started


def test_batch_engine_speedup():
    dataset = load_dataset(BATCH_DATASET, BATCH_SCALE, BENCH_SEED)
    graph = dataset.graph
    workload = generate_workload(
        graph, pair_count=BATCH_PAIRS, hop_distance=2, seed=BENCH_SEED
    )
    queries = [(source, target, BATCH_K) for source, target in workload]
    assert len(queries) >= 20

    bitset_engine = BatchEngine(graph, seed=BENCH_SEED)
    batch, batch_seconds = _timed(lambda: bitset_engine.run(queries))

    per_world_engine = BatchEngine(graph, seed=BENCH_SEED, sweep="per_world")
    per_world, per_world_seconds = _timed(
        lambda: per_world_engine.run(queries)
    )

    sequential, sequential_seconds = _timed(
        lambda: BatchEngine(graph, seed=BENCH_SEED).run_sequential(queries)
    )

    mc = MonteCarloEstimator(graph, seed=BENCH_SEED)
    _, lazy_seconds = _timed(
        lambda: Estimator.estimate_batch(mc, queries, seed=BENCH_SEED)
    )

    # Exactness: every shared-stream strategy produces identical estimates.
    np.testing.assert_array_equal(batch.estimates, sequential.estimates)
    np.testing.assert_array_equal(batch.estimates, per_world.estimates)

    # The point of the engine: beat the per-query loop at equal K.
    assert batch_seconds < sequential_seconds

    cached, cached_seconds = _timed(lambda: bitset_engine.run(queries))
    np.testing.assert_array_equal(batch.estimates, cached.estimates)
    assert cached.worlds_sampled == 0

    def row(strategy, seconds, worlds):
        return {
            "strategy": strategy,
            "time_s": f"{seconds:.3f}",
            "worlds": str(worlds),
            "speedup_vs_seq": f"{sequential_seconds / seconds:.2f}x",
        }

    emit(
        format_dict_rows(
            f"Batch engine: {len(queries)} queries, K={BATCH_K}, "
            f"{dataset.title} ({BATCH_SCALE}: n={graph.node_count}, "
            f"m={graph.edge_count})",
            [
                row("engine (bitset sweep)", batch_seconds,
                    batch.worlds_sampled),
                row("engine (per-world sweep)", per_world_seconds,
                    per_world.worlds_sampled),
                row("sequential shared-stream loop", sequential_seconds,
                    sequential.worlds_sampled),
                row("lazy MC per-query loop", lazy_seconds,
                    len(queries) * BATCH_K),
                row("engine re-run (cache hits)", cached_seconds, 0),
            ],
            ["strategy", "time_s", "worlds", "speedup_vs_seq"],
            headers=["Strategy", "Time (s)", "Worlds sampled",
                     "Speedup vs sequential"],
        ),
        filename="batch_engine.txt",
    )
    emit(paper_note(
        "sampling cost dominates (§2.2); sharing each sampled world across "
        "the workload is the batch analogue of §3.7's index amortisation"
    ))
    _JSON_PAYLOAD["strategies"] = [
        {"strategy": "bitset", "seconds": batch_seconds},
        {"strategy": "per_world", "seconds": per_world_seconds},
        {"strategy": "sequential", "seconds": sequential_seconds},
        {"strategy": "lazy_mc", "seconds": lazy_seconds},
        {"strategy": "cached_rerun", "seconds": cached_seconds},
    ]
    _write_json()


def test_parallel_scaling():
    """Serial vs parallel chunk evaluation: bit-identical, and faster.

    Fans the same workload out over 1, 2, and 4 worker processes
    (``REPRO_BATCH_WORKERS``).  Equality with the serial sweep is asserted
    unconditionally — it is the engine's determinism contract, and holds
    on any machine.  The >1.5x speedup at 4 workers is asserted only when
    the host actually has >= 4 cores (parallelism cannot be demonstrated
    on fewer), at medium+ scale where per-chunk work dwarfs pool startup.
    """
    dataset = load_dataset(BATCH_DATASET, BATCH_SCALE, BENCH_SEED)
    graph = dataset.graph
    workload = generate_workload(
        graph, pair_count=BATCH_PAIRS, hop_distance=2, seed=BENCH_SEED
    )
    queries = [(source, target, BATCH_K) for source, target in workload]
    # Parallel granularity is the chunk: size the chunks so the largest
    # worker count has several tasks each (results are chunk-independent).
    chunk_size = max(1, BATCH_K // (4 * max(BATCH_WORKERS)))

    reference = None
    rows = []
    scaling = []
    serial_seconds = None
    for workers in BATCH_WORKERS:
        engine = BatchEngine(
            graph, seed=BENCH_SEED, chunk_size=chunk_size, workers=workers
        )
        result, seconds = _timed(lambda: engine.run(queries))
        if reference is None:
            reference = result
            serial_seconds = seconds
        else:
            # The headline guarantee: worker count cannot change a bit.
            np.testing.assert_array_equal(
                reference.estimates, result.estimates
            )
            assert result.sweeps == reference.sweeps
        speedup = serial_seconds / seconds
        rows.append(
            {
                "workers": str(workers),
                "time_s": f"{seconds:.3f}",
                "speedup_vs_serial": f"{speedup:.2f}x",
                "identical": "yes",
            }
        )
        scaling.append(
            {"workers": workers, "seconds": seconds, "speedup": speedup}
        )

    emit(
        format_dict_rows(
            f"Parallel chunk sweep: {len(queries)} queries, K={BATCH_K}, "
            f"chunk={chunk_size}, {dataset.title} ({BATCH_SCALE}), "
            f"{os.cpu_count()} cores",
            rows,
            ["workers", "time_s", "speedup_vs_serial", "identical"],
            headers=["Workers", "Time (s)", "Speedup vs serial",
                     "Bit-identical"],
        ),
        filename="batch_engine.txt",
    )
    emit(paper_note(
        "worlds are index-keyed (world i = f(graph, seed, i)), so the "
        "chunk sweep parallelises with no statistical cost — serial and "
        "parallel runs agree bit-for-bit"
    ))

    _JSON_PAYLOAD["parallel_scaling"] = {
        "chunk_size": chunk_size,
        "rows": scaling,
    }
    _write_json()

    cores = os.cpu_count() or 1
    by_workers = {row["workers"]: row["speedup"] for row in scaling}
    if cores >= 4 and 4 in by_workers and BATCH_SCALE not in ("tiny", "small"):
        assert by_workers[4] > 1.5, (
            f"expected >1.5x at 4 workers on {cores} cores, got "
            f"{by_workers[4]:.2f}x"
        )
    else:
        emit(paper_note(
            f"speedup assertion skipped: {cores} core(s), "
            f"scale={BATCH_SCALE} — need >=4 cores and medium+ scale"
        ))


def test_kernel_comparison():
    """Vectorized bitset kernels vs the per-node Python loops.

    Runs the same workload through ``kernels="python"`` and
    ``kernels="vectorized"`` for both sweep strategies.  Bit identity is
    asserted unconditionally — the monotone fixpoint has one solution
    whatever the evaluation schedule (see
    :mod:`repro.engine.kernels`), and ``tests/engine/test_kernels.py``
    pins it property-based.  Timings are recorded, not asserted: the
    vectorized kernels win when frontiers are wide (each NumPy call
    amortises over many nodes); on small graphs or thread-thin frontiers
    the Python worklist's early-exit bookkeeping can still be quicker.
    """
    dataset = load_dataset(BATCH_DATASET, BATCH_SCALE, BENCH_SEED)
    graph = dataset.graph
    workload = generate_workload(
        graph, pair_count=BATCH_PAIRS, hop_distance=2, seed=BENCH_SEED
    )
    queries = [(source, target, BATCH_K) for source, target in workload]

    rows = []
    results = {}
    for sweep in ("bitset", "per_world"):
        for kernels in ("python", "vectorized"):
            engine = BatchEngine(
                graph, seed=BENCH_SEED, sweep=sweep, kernels=kernels
            )
            result, seconds = _timed(lambda: engine.run(queries))
            results[(sweep, kernels)] = result
            rows.append({
                "sweep": sweep,
                "kernels": kernels,
                "seconds": seconds,
            })
        np.testing.assert_array_equal(
            results[(sweep, "python")].estimates,
            results[(sweep, "vectorized")].estimates,
        )
        assert (
            results[(sweep, "python")].sweeps
            == results[(sweep, "vectorized")].sweeps
        )

    emit(
        format_dict_rows(
            f"Sweep kernels: {len(queries)} queries, K={BATCH_K}, "
            f"{dataset.title} ({BATCH_SCALE})",
            [
                {
                    "sweep": row["sweep"],
                    "kernels": row["kernels"],
                    "time_s": f"{row['seconds']:.3f}",
                    "identical": "yes",
                }
                for row in rows
            ],
            ["sweep", "kernels", "time_s", "identical"],
            headers=["Sweep", "Kernels", "Time (s)", "Bit-identical"],
        ),
        filename="batch_engine.txt",
    )
    emit(paper_note(
        "the reachability fixpoint is monotone over a finite lattice, so "
        "frontier-bulk NumPy rounds and the per-node worklist converge to "
        "the same bits — kernel choice is a wall-clock lever only"
    ))
    _JSON_PAYLOAD["kernels"] = {"rows": rows, "bit_identical": True}
    _write_json()


def test_estimator_fast_paths():
    """PR-3 fast paths: bfs_sharing / prob_tree batches vs per-query loops.

    The BFS-Sharing loop runs in the paper-faithful independent setting
    (``refresh_per_query=True``, Table 15): every query re-samples its
    O(Km) index, which is exactly the cost the engine-chunk fast path
    amortises away — one shared world stream serves the whole workload,
    bit-identically to the ``mc`` fast path.  ProbTree's fast path lifts
    one query graph per (s, t) bag pair and answers each group with an
    inner shared-world batch; its loop re-runs Alg. 8 per query.  The
    workload queries every pair twice — the repetition served traffic
    exhibits and the exact engine cache turns into free hits.
    """
    dataset = load_dataset(BATCH_DATASET, BATCH_SCALE, BENCH_SEED)
    graph = dataset.graph
    workload = generate_workload(
        graph, pair_count=BATCH_PAIRS, hop_distance=2, seed=BENCH_SEED
    )
    queries = [(s, t, BATCH_K) for s, t in workload] * 2

    bfs = BFSSharingEstimator(graph, seed=BENCH_SEED)
    bfs_fast, bfs_fast_seconds = _timed(
        lambda: bfs.estimate_batch(queries, seed=BENCH_SEED)
    )
    engine_reference = BatchEngine(graph, seed=BENCH_SEED).run(queries)
    np.testing.assert_array_equal(bfs_fast, engine_reference.estimates)

    bfs_loop = BFSSharingEstimator(
        graph, seed=BENCH_SEED, refresh_per_query=True
    )
    bfs_loop.prepare()
    _, bfs_loop_seconds = _timed(
        lambda: Estimator.estimate_batch(bfs_loop, queries, seed=BENCH_SEED)
    )
    assert bfs_fast_seconds < bfs_loop_seconds

    prob_tree = ProbTreeEstimator(graph, seed=BENCH_SEED)
    prob_tree.prepare()
    pt_fast, pt_fast_seconds = _timed(
        lambda: prob_tree.estimate_batch(queries, seed=BENCH_SEED)
    )
    _, pt_loop_seconds = _timed(
        lambda: Estimator.estimate_batch(prob_tree, queries, seed=BENCH_SEED)
    )
    assert ((pt_fast >= 0.0) & (pt_fast <= 1.0)).all()

    def row(strategy, seconds, baseline):
        return {
            "strategy": strategy,
            "time_s": f"{seconds:.3f}",
            "speedup_vs_loop": f"{baseline / seconds:.2f}x",
        }

    emit(
        format_dict_rows(
            f"Estimator batch fast paths: {len(queries)} queries "
            f"(each pair twice), K={BATCH_K}, {dataset.title} "
            f"({BATCH_SCALE})",
            [
                row("bfs_sharing fast path (engine chunks)",
                    bfs_fast_seconds, bfs_loop_seconds),
                row("bfs_sharing per-query loop (refreshed index)",
                    bfs_loop_seconds, bfs_loop_seconds),
                row("prob_tree fast path (bag-grouped lifts)",
                    pt_fast_seconds, pt_loop_seconds),
                row("prob_tree per-query loop",
                    pt_loop_seconds, pt_loop_seconds),
            ],
            ["strategy", "time_s", "speedup_vs_loop"],
            headers=["Strategy", "Time (s)", "Speedup vs its loop"],
        ),
        filename="batch_engine.txt",
    )
    emit(paper_note(
        "a BFS-Sharing index is a transposed engine world chunk (§2.3), "
        "and ProbTree queries sharing a bag pair share one lifted graph "
        "(§2.7) — both fast paths are the paper's own index reuse, "
        "applied at workload granularity"
    ))
    _JSON_PAYLOAD["estimator_fast_paths"] = {
        "queries": len(queries),
        "bfs_sharing": {
            "fast_seconds": bfs_fast_seconds,
            "loop_seconds": bfs_loop_seconds,
            "speedup": bfs_loop_seconds / bfs_fast_seconds,
        },
        "prob_tree": {
            "fast_seconds": pt_fast_seconds,
            "loop_seconds": pt_loop_seconds,
            "speedup": pt_loop_seconds / pt_fast_seconds,
        },
    }
    _write_json()


def test_persistent_cache_warm_vs_cold():
    """The sidecar across engine lifetimes: warm run samples zero worlds.

    Two engines share nothing but ``cache_dir`` — the same isolation two
    processes would have (the genuinely cross-process version lives in
    ``tests/integration/test_persistent_cache_cli.py``).  The cold run
    pays the full sampling bill and writes the sidecar; the warm run must
    answer bit-identically from disk without materialising a single
    world.
    """
    dataset = load_dataset(BATCH_DATASET, BATCH_SCALE, BENCH_SEED)
    graph = dataset.graph
    workload = generate_workload(
        graph, pair_count=BATCH_PAIRS, hop_distance=2, seed=BENCH_SEED
    )
    queries = [(s, t, BATCH_K) for s, t in workload]

    with tempfile.TemporaryDirectory() as cache_dir:
        cold_engine = BatchEngine(graph, seed=BENCH_SEED, cache_dir=cache_dir)
        cold, cold_seconds = _timed(lambda: cold_engine.run(queries))
        cold_engine.cache.close()

        warm_engine = BatchEngine(graph, seed=BENCH_SEED, cache_dir=cache_dir)
        warm, warm_seconds = _timed(lambda: warm_engine.run(queries))
        statistics = warm_engine.cache.statistics()
        warm_engine.cache.close()

    np.testing.assert_array_equal(cold.estimates, warm.estimates)
    assert warm.worlds_sampled == 0
    assert statistics["disk_hits"] == warm.cache_hits
    assert warm_seconds < cold_seconds

    emit(
        format_dict_rows(
            f"Persistent result cache: {len(queries)} queries, "
            f"K={BATCH_K}, {dataset.title} ({BATCH_SCALE})",
            [
                {
                    "run": "cold (populates sidecar)",
                    "time_s": f"{cold_seconds:.3f}",
                    "worlds": str(cold.worlds_sampled),
                    "disk_hits": "0",
                },
                {
                    "run": "warm (fresh engine, same sidecar)",
                    "time_s": f"{warm_seconds:.3f}",
                    "worlds": str(warm.worlds_sampled),
                    "disk_hits": str(statistics["disk_hits"]),
                },
            ],
            ["run", "time_s", "worlds", "disk_hits"],
            headers=["Run", "Time (s)", "Worlds sampled", "Disk hits"],
        ),
        filename="batch_engine.txt",
    )
    emit(paper_note(
        "an estimate is a pure function of (graph fingerprint, s, t, K, "
        "seed, max_hops), so persisting it is exact — the warm run "
        "replays the cold run's numbers without sampling (§2.2's cost "
        "model, taken past process lifetime)"
    ))
    _JSON_PAYLOAD["persistent_cache"] = {
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": cold_seconds / warm_seconds,
        "disk_hits": statistics["disk_hits"],
        "warm_worlds_sampled": warm.worlds_sampled,
    }
    _write_json()
