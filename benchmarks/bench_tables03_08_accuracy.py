"""Tables 3-8: relative error per dataset, at convergence and at K=1000.

One table per dataset, exactly the paper's columns: K at convergence, R_K
and relative error at convergence, and the same at the fixed K=1000 prior
works used — plus the pairwise deviation row.  Shapes to verify (§3.4):
errors at convergence are small and comparable across estimators (no
common winner), and comparing at a fixed K is unfair to slower-converging
methods.
"""

import pytest

from repro.experiments.report import format_dict_rows

from benchmarks._shared import BENCH_DATASETS, emit, get_study, paper_note

TABLE_NUMBER = {
    "lastfm": 3,
    "nethept": 4,
    "as_topology": 5,
    "dblp02": 6,
    "dblp005": 7,
    "biomine": 8,
}


@pytest.mark.parametrize("dataset_key", BENCH_DATASETS)
def test_tables03_08_relative_error(benchmark, dataset_key):
    study = get_study(dataset_key)
    benchmark.pedantic(lambda: study.accuracy_rows(), rounds=3, iterations=1)

    table_number = TABLE_NUMBER.get(dataset_key, "?")
    rows = study.accuracy_rows()
    emit(
        format_dict_rows(
            f"Table {table_number}: relative error (RE), {study.dataset.title}",
            rows,
            ["estimator", "K_conv", "R_conv", "RE_conv_%", "R_1000", "RE_1000_%"],
            headers=[
                "Estimator",
                "K@conv",
                "R@conv",
                "RE@conv (%)",
                "R@1000",
                "RE@1000 (%)",
            ],
        )
        + "\n"
        + paper_note(
            "at convergence all six methods sit within ~2% of the MC "
            "reference with no common winner (§3.4 (2))."
        ),
        filename="tables03_08_accuracy.txt",
    )

    # Shape assertion: MC (the reference itself) has zero error at
    # convergence, and every estimator's converged reliability is a
    # probability in a plausible band around the reference.
    mc_row = next(row for row in rows if row["estimator"] == "MC")
    assert float(mc_row["RE_conv_%"]) == 0.0
    reference = float(mc_row["R_conv"])
    for row in rows[:-1]:
        value = float(row["R_conv"])
        assert abs(value - reference) <= max(0.05, 0.3 * reference), row
