"""Shared infrastructure for the benchmark suite.

Every benchmark file reproduces one table or figure of the paper (see
DESIGN.md §4).  Most of them read off a per-dataset *study* (full
convergence grid for all six estimators), which is expensive — so studies
are memoised here and shared across benchmark files within one pytest run.

Environment knobs (all optional):

=====================  =======  ==================================
variable               default  meaning
=====================  =======  ==================================
REPRO_BENCH_SCALE      small    dataset scale (tiny/small/medium)
REPRO_BENCH_PAIRS      5        s-t pairs per workload
REPRO_BENCH_REPEATS    4        repeats T per (pair, K)
REPRO_BENCH_KMAX       1000     largest sample size on the K grid
REPRO_BENCH_DATASETS   all six  comma-separated dataset subset
=====================  =======  ==================================

The paper's full protocol is 100 pairs x 100 repeats on million-edge
graphs; the defaults here keep the whole suite around tens of minutes in
pure Python while preserving every comparative shape (see EXPERIMENTS.md).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List

from repro.datasets.suite import DATASET_KEYS
from repro.experiments.convergence import ConvergenceCriterion
from repro.experiments.runner import StudyConfig, StudyResult, run_study

OUTPUT_DIRECTORY = Path(__file__).resolve().parent / "output"

BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")
BENCH_PAIRS = int(os.environ.get("REPRO_BENCH_PAIRS", "5"))
BENCH_REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "4"))
BENCH_K_MAX = int(os.environ.get("REPRO_BENCH_KMAX", "1000"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))

_dataset_env = os.environ.get("REPRO_BENCH_DATASETS", "")
BENCH_DATASETS: List[str] = (
    [key.strip() for key in _dataset_env.split(",") if key.strip()]
    if _dataset_env
    else list(DATASET_KEYS)
)

BENCH_CRITERION = ConvergenceCriterion(k_start=250, k_step=250, k_max=BENCH_K_MAX)

_STUDIES: Dict[str, StudyResult] = {}


def bench_config(dataset_key: str) -> StudyConfig:
    """The standard study configuration for one dataset."""
    return StudyConfig(
        dataset=dataset_key,
        scale=BENCH_SCALE,
        pair_count=BENCH_PAIRS,
        repeats=BENCH_REPEATS,
        criterion=BENCH_CRITERION,
        seed=BENCH_SEED,
    )


def get_study(dataset_key: str) -> StudyResult:
    """Memoised full study (all estimators, full K grid) for a dataset."""
    if dataset_key not in _STUDIES:
        emit(f"[study] running full convergence study on {dataset_key} "
             f"(scale={BENCH_SCALE}, pairs={BENCH_PAIRS}, T={BENCH_REPEATS})")
        _STUDIES[dataset_key] = run_study(bench_config(dataset_key))
    return _STUDIES[dataset_key]


_OPENED_OUTPUTS: set = set()

#: Everything emitted during the run; the benchmarks conftest replays this
#: in the terminal summary so tables survive pytest's output capture.
EMITTED: List[str] = []


def emit(text: str, filename: str | None = None) -> None:
    """Record a result table: terminal summary + archive file.

    pytest captures file-descriptor output during tests, so tables are (a)
    buffered in :data:`EMITTED` and replayed by ``pytest_terminal_summary``
    (visible in ``tee`` logs), and (b) written to ``benchmarks/output/``
    immediately.  The first write of a run truncates each file.
    """
    EMITTED.append(text)
    print(text, flush=True)  # shown with -s / on failure
    if filename:
        OUTPUT_DIRECTORY.mkdir(exist_ok=True)
        mode = "a" if filename in _OPENED_OUTPUTS else "w"
        _OPENED_OUTPUTS.add(filename)
        with open(OUTPUT_DIRECTORY / filename, mode, encoding="utf-8") as handle:
            handle.write(text + "\n")


def paper_note(text: str) -> str:
    """Format a paper-reference footnote under a table."""
    return f"  [paper] {text}"
