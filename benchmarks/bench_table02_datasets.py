"""Table 2: dataset properties (nodes, edges, edge-probability stats).

Regenerates the paper's dataset table for the synthetic analogues, printing
our values next to the paper's reported ones so the probability-model match
is auditable.  The timed kernel is dataset generation itself.
"""

import numpy as np

from repro.datasets.suite import DATASETS, dataset_table
from repro.experiments.report import format_table

from benchmarks._shared import BENCH_SCALE, BENCH_SEED, emit


def test_table02_dataset_properties(benchmark):
    def build_one_uncached():
        spec = DATASETS["lastfm"]
        return spec.builder(
            spec.nodes_by_scale["tiny"], np.random.default_rng(123)
        )

    benchmark.pedantic(build_one_uncached, rounds=3, iterations=1)

    rows = []
    for row in dataset_table(BENCH_SCALE, BENCH_SEED):
        rows.append(
            [
                row["dataset"],
                row["nodes"],
                row["edges"],
                row["edge_probabilities"],
            ]
        )
        rows.append(
            [
                "  (paper)",
                row["paper_nodes"],
                row["paper_edges"],
                row["paper_probabilities"],
            ]
        )
    emit(
        format_table(
            f"Table 2: Properties of datasets (scale={BENCH_SCALE})",
            ["Dataset", "#Nodes", "#Edges", "Edge Prob: Mean, SD, Quartiles"],
            rows,
        ),
        filename="table02_datasets.txt",
    )
