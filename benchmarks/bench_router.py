"""Adaptive query routing: auto vs the static tree vs the best fixed pick.

Not a paper table — this benchmarks the ISSUE 9 router.  The paper's
recommendation layer (§6) is a *static* decision tree: it knows the
estimator family's asymptotics but nothing about this host, this graph,
or this query mix.  The :class:`~repro.routing.AdaptiveRouter` keeps the
tree as its cold-start prior and then routes on measured per-bucket
telemetry (seconds/sample x estimate dispersion), so ``method="auto"``
converges onto whichever estimator actually wins here.

Three strategies over the same deterministic workload (fresh service
each, same seed):

* ``fixed:<method>`` — every candidate estimator named explicitly, one
  run each.  The cheapest of these is the *best fixed* pick, an oracle
  chosen in hindsight.
* ``static`` — the paper's tree, frozen: the method a cold router picks
  for this workload shape, named for every query.  (Its wall-clock is
  the matching fixed run.)
* ``auto`` — the adaptive router live: pays cold-start and exploration,
  then routes on measurements.

Asserted unconditionally (the correctness gates):

* **bit identity** — every auto answer equals the same request naming
  the routed method against a fresh identical service;
* the router actually *measured* — warm ``measured`` decisions occur,
  exploration stays in its epsilon share, and every decision's method is
  a registered candidate.

The wall-clock *regret* (auto seconds / best-fixed seconds) is recorded
in the JSON and only gated by ``REPRO_ROUTER_REGRET_CEILING`` (default
3.0; ``0`` records without asserting — what CI uses, wall-clock ratios
flake on shared runners).  Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_router.py -q -s

Environment knobs: ``REPRO_ROUTER_SCALE`` (default tiny),
``REPRO_ROUTER_PAIRS`` (default 6), ``REPRO_ROUTER_ROUNDS`` (default 8),
``REPRO_ROUTER_K`` (default 200).  Machine-readable results land in
``benchmarks/output/router.json`` (uploaded as a CI artifact).
"""

import json
import os
import time
from collections import Counter

from repro.api import EstimateRequest, ReliabilityService
from repro.routing import DEFAULT_CANDIDATES, AdaptiveRouter, QueryTelemetry

from benchmarks._shared import OUTPUT_DIRECTORY, emit

ROUTER_SEED = 3
ROUTER_DATASET = os.environ.get("REPRO_ROUTER_DATASET", "lastfm")
ROUTER_SCALE = os.environ.get("REPRO_ROUTER_SCALE", "tiny")
ROUTER_PAIRS = int(os.environ.get("REPRO_ROUTER_PAIRS", "6"))
ROUTER_ROUNDS = int(os.environ.get("REPRO_ROUTER_ROUNDS", "8"))
ROUTER_K = int(os.environ.get("REPRO_ROUTER_K", "200"))
#: Ceiling asserted on auto seconds / best-fixed seconds; ``0`` records
#: without asserting (what CI uses).
REGRET_CEILING = float(os.environ.get("REPRO_ROUTER_REGRET_CEILING", "3.0"))

JSON_OUTPUT = OUTPUT_DIRECTORY / "router.json"


def _service():
    return ReliabilityService.from_dataset(
        ROUTER_DATASET, ROUTER_SCALE, seed=ROUTER_SEED
    )


def _pairs(node_count):
    """A deterministic spread of distinct s-t pairs."""
    pairs = []
    for index in range(ROUTER_PAIRS):
        source = (index * 37) % node_count
        target = (index * 61 + 17) % node_count
        if source == target:
            target = (target + 1) % node_count
        pairs.append((source, target))
    return pairs


def _drive(service, pairs, method):
    """The full workload through one service; returns (seconds, responses)."""
    responses = []
    started = time.perf_counter()
    for _ in range(ROUTER_ROUNDS):
        for source, target in pairs:
            responses.append(
                service.estimate(
                    EstimateRequest(
                        source=source,
                        target=target,
                        samples=ROUTER_K,
                        method=method,
                    )
                )
            )
    return time.perf_counter() - started, responses


def test_router_regret_and_bit_identity():
    probe = _service()
    node_count = probe.graph.node_count
    probe.close()
    pairs = _pairs(node_count)
    query_count = ROUTER_ROUNDS * len(pairs)

    # The paper's static tree, frozen for this workload shape.
    static_method = AdaptiveRouter(QueryTelemetry()).route(
        fingerprint="static-probe", samples=ROUTER_K
    ).method

    fixed = {}
    for candidate in DEFAULT_CANDIDATES:
        service = _service()
        try:
            seconds, _ = _drive(service, pairs, candidate)
        finally:
            service.close()
        fixed[candidate] = seconds

    service = _service()
    try:
        auto_seconds, auto_responses = _drive(service, pairs, "auto")
        decisions = dict(service.router.statistics()["decisions"])
    finally:
        service.close()

    methods_routed = Counter(
        response.method for response in auto_responses
    )
    reasons = Counter(
        response.routing["reason"] for response in auto_responses
    )
    assert all(method in DEFAULT_CANDIDATES for method in methods_routed)
    assert reasons["measured"] > 0, reasons
    # Exploration stays in its epsilon share (one warm decision in ten,
    # and cold-start decisions never explore).
    assert reasons["exploration"] <= query_count // 10 + 1, reasons

    # Bit identity: replay every auto answer as a named request against
    # a fresh identical service.  No updates ever land here, so each
    # method's once-built index is the same on both sides.
    replay = _service()
    try:
        for response in auto_responses:
            named = replay.estimate(
                EstimateRequest(
                    source=response.source,
                    target=response.target,
                    samples=response.samples,
                    method=response.method,
                )
            )
            assert named.estimate == response.estimate, (
                response.method,
                response.source,
                response.target,
            )
            assert named.routing is None
    finally:
        replay.close()

    best_fixed = min(fixed, key=fixed.get)
    regret = auto_seconds / fixed[best_fixed]
    payload = {
        "dataset": ROUTER_DATASET,
        "scale": ROUTER_SCALE,
        "pairs": len(pairs),
        "rounds": ROUTER_ROUNDS,
        "samples": ROUTER_K,
        "queries": query_count,
        "cpu_count": os.cpu_count(),
        "fixed_seconds": {
            method: round(seconds, 4) for method, seconds in fixed.items()
        },
        "best_fixed": best_fixed,
        "static_method": static_method,
        "static_seconds": round(fixed[static_method], 4),
        "auto_seconds": round(auto_seconds, 4),
        "regret_vs_best_fixed": round(regret, 3),
        "speedup_vs_static": round(fixed[static_method] / auto_seconds, 3),
        "decisions": decisions,
        "methods_routed": dict(methods_routed),
        "converged_to": methods_routed.most_common(1)[0][0],
        "bit_identical": True,
    }
    OUTPUT_DIRECTORY.mkdir(exist_ok=True)
    JSON_OUTPUT.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    lines = [
        "adaptive routing: "
        f"{len(pairs)} pairs x {ROUTER_ROUNDS} rounds, K={ROUTER_K}, "
        f"{ROUTER_DATASET}/{ROUTER_SCALE}, {os.cpu_count()} core(s)",
    ] + [
        f"  fixed:{method:<12s}: {seconds:8.3f} s"
        + ("  <- best fixed" if method == best_fixed else "")
        + ("  <- static tree pick" if method == static_method else "")
        for method, seconds in sorted(fixed.items(), key=lambda kv: kv[1])
    ] + [
        f"  auto             : {auto_seconds:8.3f} s  "
        f"(regret {regret:.2f}x vs best fixed, bit-identical)",
        f"  decisions        : {dict(sorted(decisions.items()))}",
        f"  methods routed   : {dict(methods_routed.most_common())}",
    ]
    emit("\n".join(lines), "router.txt")

    if REGRET_CEILING > 0:
        assert regret <= REGRET_CEILING, (
            f"auto spent {regret:.2f}x the best fixed pick "
            f"(ceiling {REGRET_CEILING}x)"
        )
