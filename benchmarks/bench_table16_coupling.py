"""Table 16: coupling ProbTree with the efficient estimators.

The paper's §3.8: running LP+/RHH/RSS *on the ProbTree query graph* instead
of the full graph improves their running time by ~10-30%.  Reproduced on
the three datasets the paper uses (lastFM, AS Topology, BioMine).
"""

import time

import numpy as np
import pytest

from repro.core.registry import create_estimator, display_name
from repro.experiments.report import format_table
from repro.util.rng import stable_substream

from benchmarks._shared import (
    BENCH_DATASETS,
    BENCH_SEED,
    emit,
    get_study,
    paper_note,
)

COUPLED = ("lp_plus", "rhh", "rss")
TABLE_DATASETS = ("lastfm", "as_topology", "biomine")
RUNS_PER_PAIR = 2


def _time_per_query(estimator, workload, samples, seed):
    started = time.perf_counter()
    runs = 0
    for pair_index, (source, target) in enumerate(workload):
        for repeat in range(RUNS_PER_PAIR):
            rng = stable_substream(seed, pair_index, repeat)
            estimator.estimate(source, target, samples, rng=rng)
            runs += 1
    return (time.perf_counter() - started) / runs


def test_table16_probtree_coupling(benchmark):
    datasets = [key for key in TABLE_DATASETS if key in BENCH_DATASETS]
    if not datasets:
        pytest.skip("all Table 16 datasets excluded via REPRO_BENCH_DATASETS")

    rows = []
    speedups = []
    for dataset_key in datasets:
        study = get_study(dataset_key)
        graph = study.dataset.graph
        for inner_key in COUPLED:
            samples = (
                study.results[inner_key].converged_at
                or study.config.criterion.k_max
            )
            plain = create_estimator(inner_key, graph, seed=BENCH_SEED)
            plain_time = _time_per_query(
                plain, study.workload, samples, BENCH_SEED
            )

            def factory(g, k=inner_key):
                return create_estimator(k, g, seed=BENCH_SEED)

            coupled = create_estimator(
                "prob_tree", graph, estimator_factory=factory, seed=BENCH_SEED
            )
            coupled.prepare()
            coupled_time = _time_per_query(
                coupled, study.workload, samples, BENCH_SEED
            )
            speedups.append(plain_time / max(coupled_time, 1e-9))
            rows.append(
                [
                    study.dataset.title,
                    display_name(inner_key),
                    str(samples),
                    f"{plain_time:.4f}",
                    f"{coupled_time:.4f}",
                    f"{plain_time / max(coupled_time, 1e-9):.2f}x",
                ]
            )

    study = get_study(datasets[0])
    coupled = create_estimator(
        "prob_tree",
        study.dataset.graph,
        estimator_factory=lambda g: create_estimator("rhh", g, seed=0),
        seed=0,
    )
    coupled.prepare()
    source, target = study.workload.pairs[0]
    benchmark.pedantic(
        lambda: coupled.estimate(source, target, 250, rng=np.random.default_rng(0)),
        rounds=3,
        iterations=1,
    )

    emit(
        format_table(
            "Table 16: ProbTree coupled with efficient estimators "
            "(time per query at the estimator's convergence K)",
            [
                "Dataset",
                "Estimator",
                "K",
                "plain (s)",
                "ProbTree+ (s)",
                "speedup",
            ],
            rows,
        )
        + "\n"
        + paper_note(
            "the paper reports 10-30% runtime improvement from running the "
            "estimator on the ProbTree query graph (§3.8)."
        ),
        filename="table16_coupling.txt",
    )

    # Shape assertion: coupling helps on average (allowing per-cell noise).
    assert float(np.mean(speedups)) > 0.95, speedups
