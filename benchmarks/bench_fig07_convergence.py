"""Figure 7(a-f): estimator variance and convergence (rho_K vs K).

One sub-figure per dataset: the dispersion index rho_K = V_K / R_K of every
estimator as K grows, plus the K at which the 1e-3 criterion fires.  Shapes
to verify (paper §3.2): the four MC-based estimators cluster together;
RHH/RSS sit well below them and converge with ~500 fewer samples.
"""

import numpy as np
import pytest

from repro.core.registry import display_name
from repro.experiments.report import format_series, format_table

from benchmarks._shared import BENCH_DATASETS, emit, get_study, paper_note


@pytest.mark.parametrize("dataset_key", BENCH_DATASETS)
def test_fig07_dispersion_curves(benchmark, dataset_key):
    study = get_study(dataset_key)
    benchmark.pedantic(lambda: study.dispersion_series(), rounds=3, iterations=1)

    series = study.dispersion_series()
    x_values = [point["K"] for point in next(iter(series.values()))]
    curves = {
        display_name(key): [1000.0 * point["rho_K"] for point in points]
        for key, points in series.items()
    }
    emit(
        format_series(
            f"Figure 7 ({dataset_key}): rho_K x 10^-3 vs #samples K",
            "K",
            x_values,
            curves,
            value_format="{:.3f}",
        ),
        filename="fig07_convergence.txt",
    )

    conv_rows = [
        [display_name(key), str(k) if k else f"not reached (<= {x_values[-1]})"]
        for key, k in study.convergence_samples().items()
    ]
    emit(
        format_table(
            f"Figure 7 ({dataset_key}): K at convergence (rho_K < 1e-3)",
            ["Estimator", "K at convergence"],
            conv_rows,
        )
        + "\n"
        + paper_note(
            "recursive estimators converge with roughly 250-500 fewer "
            "samples than the MC family on the same dataset (§3.2 (4))."
        ),
        filename="fig07_convergence.txt",
    )

    # Shape assertion: recursive dispersion <= MC dispersion, averaged over
    # the grid (variance reduction).  Skipped when the dataset's reliability
    # is so small (NetHEPT-like, ~1e-3) that V_K quantises to single-sample
    # granularity and the ratio is pure noise at benchmark repeats.
    reliability = series["mc"][0]["R_K"]
    if reliability >= 0.02:
        mean_rho = {
            key: float(np.mean([p["rho_K"] for p in points]))
            for key, points in series.items()
        }
        recursive = float(np.mean([mean_rho["rhh"], mean_rho["rss"]]))
        mc_family = float(
            np.mean([mean_rho["mc"], mean_rho["bfs_sharing"], mean_rho["lp_plus"]])
        )
        assert recursive <= mc_family * 1.25, mean_rho
