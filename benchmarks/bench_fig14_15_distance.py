"""Figures 14-15: sensitivity to the s-t hop distance (BioMine).

Sweeps the workload hop distance h and reports, per estimator: the K at
convergence (Fig. 14a), the relative error at convergence (Fig. 14b), and
the running time to convergence (Fig. 15a/b).  Shapes to verify (§3.9):
reliability falls sharply with h; K at convergence is stable for close
pairs; relative error stays insensitive to h.
"""

import pytest

from repro.core.registry import display_name
from repro.datasets.queries import WorkloadError, generate_workload
from repro.datasets.suite import load_dataset
from repro.experiments.convergence import ConvergenceCriterion, run_convergence
from repro.experiments.metrics import relative_error
from repro.experiments.report import format_series
from repro.experiments.runner import StudyConfig, build_estimator

from benchmarks._shared import (
    BENCH_DATASETS,
    BENCH_SCALE,
    BENCH_SEED,
    emit,
    paper_note,
)

DATASET = "biomine"
DISTANCES = (2, 4, 6, 8)
PAIRS = 3
REPEATS = 3
CRITERION = ConvergenceCriterion(k_start=250, k_step=250, k_max=750)
ESTIMATORS = ("mc", "bfs_sharing", "prob_tree", "lp_plus", "rhh", "rss")


def test_fig14_15_distance_sensitivity(benchmark):
    if DATASET not in BENCH_DATASETS:
        pytest.skip(f"{DATASET} excluded via REPRO_BENCH_DATASETS")
    dataset = load_dataset(DATASET, BENCH_SCALE, BENCH_SEED)
    config = StudyConfig(
        dataset=DATASET,
        scale=BENCH_SCALE,
        criterion=CRITERION,
        seed=BENCH_SEED,
        estimators=ESTIMATORS,
    )

    reachable_distances = []
    conv_curves = {display_name(k): [] for k in ESTIMATORS}
    error_curves = {display_name(k): [] for k in ESTIMATORS}
    time_curves = {display_name(k): [] for k in ESTIMATORS}
    reliability_by_distance = []

    for distance in DISTANCES:
        try:
            workload = generate_workload(
                dataset.graph,
                pair_count=PAIRS,
                hop_distance=distance,
                seed=BENCH_SEED + distance,
            )
        except WorkloadError:
            emit(
                f"[fig14-15] no {PAIRS} pairs at distance {distance} at scale "
                f"{BENCH_SCALE}; stopping the sweep here (the paper's BioMine "
                "is ~400x larger and reaches h=8)."
            )
            break
        reachable_distances.append(distance)

        reference = None
        for key in ESTIMATORS:
            estimator = build_estimator(config, key, dataset.graph)
            estimator.prepare()
            result = run_convergence(
                estimator, workload, criterion=CRITERION, repeats=REPEATS,
                seed=BENCH_SEED,
            )
            point = result.convergence_point
            name = display_name(key)
            conv_curves[name].append(result.converged_at or CRITERION.k_max)
            time_curves[name].append(point.seconds_per_query)
            if key == "mc":
                reference = point.per_pair_means
                reliability_by_distance.append(point.average_reliability)
            error_curves[name].append(
                100.0 * relative_error(point.per_pair_means, reference)
                if reference is not None
                else 0.0
            )

    benchmark.pedantic(
        lambda: dataset.graph.bfs_distances(0, max_hops=8), rounds=3, iterations=1
    )

    emit(
        format_series(
            "Figure 14(a): #samples K for convergence vs s-t distance",
            "h",
            reachable_distances,
            conv_curves,
            value_format="{:.0f}",
        ),
        filename="fig14_15_distance.txt",
    )
    emit(
        format_series(
            "Figure 14(b): relative error (%) vs s-t distance",
            "h",
            reachable_distances,
            error_curves,
            value_format="{:.2f}",
        ),
        filename="fig14_15_distance.txt",
    )
    emit(
        format_series(
            "Figure 15: time to convergence (s/query) vs s-t distance",
            "h",
            reachable_distances,
            time_curves,
            value_format="{:.4f}",
        ),
        filename="fig14_15_distance.txt",
    )
    emit(
        format_series(
            "Reliability (MC at convergence) vs s-t distance",
            "h",
            reachable_distances,
            {"MC": reliability_by_distance},
            value_format="{:.4f}",
        )
        + "\n"
        + paper_note(
            "reliability drops sharply with h (0.40 at h=2 down to 0.0002 at "
            "h=8 on the paper's BioMine); K at convergence is stable for "
            "h <= 6; RE is insensitive to h (§3.9)."
        ),
        filename="fig14_15_distance.txt",
    )

    # Shape assertion: reliability decreases with distance.
    assert all(
        a >= b for a, b in zip(reliability_by_distance, reliability_by_distance[1:])
    ), reliability_by_distance
