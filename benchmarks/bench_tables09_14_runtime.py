"""Tables 9-14: running times per dataset, at convergence and at K=1000.

One table per dataset with the paper's columns: K at convergence, total
time per query at convergence, at K=1000, and time per sample.  The timed
kernel (pytest-benchmark) is one query per estimator at the convergence K,
giving calibrated per-query micro-timings alongside the study numbers.

Shapes to verify (§3.5): recursive estimators are fastest at convergence
(fewer samples needed); per-sample time is ~constant in K except BFS
Sharing; MC-family orderings can shift at fixed K=1000.
"""

import numpy as np
import pytest

from repro.experiments.report import format_dict_rows
from repro.experiments.runner import build_estimator

from benchmarks._shared import BENCH_DATASETS, emit, get_study, paper_note

TABLE_NUMBER = {
    "lastfm": 9,
    "nethept": 10,
    "as_topology": 11,
    "dblp02": 12,
    "dblp005": 13,
    "biomine": 14,
}


@pytest.mark.parametrize("dataset_key", BENCH_DATASETS)
def test_tables09_14_running_time(benchmark, dataset_key):
    study = get_study(dataset_key)

    # Calibrated single-query timing for the paper's "Time Per Sample"
    # column: MC at the convergence K.
    mc_result = study.results["mc"]
    samples = mc_result.convergence_point.samples
    estimator = build_estimator(study.config, "mc", study.dataset.graph)
    source, target = study.workload.pairs[0]
    benchmark.pedantic(
        lambda: estimator.estimate(
            source, target, samples, rng=np.random.default_rng(0)
        ),
        rounds=3,
        iterations=1,
    )

    table_number = TABLE_NUMBER.get(dataset_key, "?")
    rows = study.runtime_rows()
    emit(
        format_dict_rows(
            f"Table {table_number}: running time, {study.dataset.title}",
            rows,
            ["estimator", "K_conv", "time_conv_s", "time_1000_s", "ms_per_sample"],
            headers=[
                "Estimator",
                "K@conv",
                "Time@conv (s)",
                "Time@1000 (s)",
                "ms/sample",
            ],
        )
        + "\n"
        + paper_note(
            "RHH/RSS fastest at convergence; BFS Sharing's time still grows "
            "with K (the paper's complexity correction, §3.5 (3))."
        ),
        filename="tables09_14_runtime.txt",
    )

    # Shape assertion: the recursive methods' convergence-time advantage
    # (fewer samples) is visible: their K at convergence is <= the MC
    # family's.  Skipped on near-zero-reliability datasets (NetHEPT-like),
    # where quantised dispersion makes single convergence calls spurious
    # at benchmark repeat counts.
    reference_reliability = mc_result.convergence_point.average_reliability
    if reference_reliability >= 0.02:
        conv = study.convergence_samples()
        k_max = study.config.criterion.k_max

        def k_of(key):
            return conv[key] or k_max

        assert min(k_of("rhh"), k_of("rss")) <= min(
            k_of("mc"), k_of("bfs_sharing"), k_of("lp_plus")
        )
