"""Table 15: BFS Sharing's per-query index-update (re-sampling) cost.

Between successive queries, BFS Sharing must re-sample its pre-computed
worlds to keep answers independent; the paper charges this to the method as
an additional per-query cost over 1000 successive queries.  We measure the
refresh directly (it is exactly the per-query extra work).
"""

import time

import numpy as np

from repro.core.estimators.bfs_sharing import BFSSharingIndex
from repro.datasets.suite import load_dataset
from repro.experiments.report import format_table

from benchmarks._shared import (
    BENCH_DATASETS,
    BENCH_K_MAX,
    BENCH_SCALE,
    BENCH_SEED,
    emit,
    paper_note,
)

REFRESHES = 10


def test_table15_index_update_cost(benchmark):
    rows = []
    per_dataset = {}
    for dataset_key in BENCH_DATASETS:
        dataset = load_dataset(dataset_key, BENCH_SCALE, BENCH_SEED)
        index = BFSSharingIndex(dataset.graph, capacity=BENCH_K_MAX, rng=BENCH_SEED)
        rng = np.random.default_rng(BENCH_SEED)
        started = time.perf_counter()
        for _ in range(REFRESHES):
            index.refresh(rng)
        per_query = (time.perf_counter() - started) / REFRESHES
        per_dataset[dataset_key] = per_query
        rows.append([dataset.title, f"{per_query:.4f}"])

    graph = load_dataset(BENCH_DATASETS[0], BENCH_SCALE, BENCH_SEED).graph
    index = BFSSharingIndex(graph, capacity=BENCH_K_MAX, rng=0)
    benchmark.pedantic(
        lambda: index.refresh(np.random.default_rng(1)), rounds=3, iterations=1
    )

    emit(
        format_table(
            f"Table 15: BFS Sharing index update cost per query "
            f"(K={BENCH_K_MAX}, scale={BENCH_SCALE})",
            ["Dataset", "Time cost (s/query)"],
            rows,
        )
        + "\n"
        + paper_note(
            "the paper charges 0.02s (lastFM) up to ~7s (BioMine) per query "
            "for re-sampling between 1000 successive queries."
        ),
        filename="table15_index_update.txt",
    )

    # Shape assertion: update cost scales with graph size (largest dataset
    # costs more than the smallest).
    if {"lastfm", "biomine"} <= set(per_dataset):
        assert per_dataset["biomine"] > per_dataset["lastfm"]
