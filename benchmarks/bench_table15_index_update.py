"""Table 15: BFS Sharing's per-query index-update (re-sampling) cost.

Between successive queries, BFS Sharing must re-sample its pre-computed
worlds to keep answers independent; the paper charges this to the method as
an additional per-query cost over 1000 successive queries.  We measure the
refresh directly (it is exactly the per-query extra work).

A second benchmark measures the *live-update* path the paper's Table 15
motivates: ``ReliabilityService.update`` mutating edge probabilities under
an already-built ProbTree index, comparing the incremental bag re-lift
against a from-scratch rebuild.  Machine-readable results for both land in
``benchmarks/output/table15_index_update.json`` (asserted in CI).
"""

import json
import time

import numpy as np

from repro.api import (
    BatchRequest,
    ReliabilityService,
    UpdateRequest,
    coerce_query_specs,
)
from repro.core.estimators.bfs_sharing import BFSSharingIndex
from repro.datasets.suite import load_dataset
from repro.experiments.report import format_table

from benchmarks._shared import (
    BENCH_DATASETS,
    BENCH_K_MAX,
    BENCH_SCALE,
    BENCH_SEED,
    OUTPUT_DIRECTORY,
    emit,
    paper_note,
)

REFRESHES = 10

JSON_OUTPUT = OUTPUT_DIRECTORY / "table15_index_update.json"

#: Collected by both benchmarks, flushed to JSON_OUTPUT as each finishes.
_JSON_PAYLOAD = {"scale": BENCH_SCALE, "seed": BENCH_SEED}


def _write_json() -> None:
    OUTPUT_DIRECTORY.mkdir(exist_ok=True)
    JSON_OUTPUT.write_text(
        json.dumps(_JSON_PAYLOAD, indent=2) + "\n", encoding="utf-8"
    )


def test_table15_index_update_cost(benchmark):
    rows = []
    per_dataset = {}
    for dataset_key in BENCH_DATASETS:
        dataset = load_dataset(dataset_key, BENCH_SCALE, BENCH_SEED)
        index = BFSSharingIndex(dataset.graph, capacity=BENCH_K_MAX, rng=BENCH_SEED)
        rng = np.random.default_rng(BENCH_SEED)
        started = time.perf_counter()
        for _ in range(REFRESHES):
            index.refresh(rng)
        per_query = (time.perf_counter() - started) / REFRESHES
        per_dataset[dataset_key] = per_query
        rows.append([dataset.title, f"{per_query:.4f}"])

    graph = load_dataset(BENCH_DATASETS[0], BENCH_SCALE, BENCH_SEED).graph
    index = BFSSharingIndex(graph, capacity=BENCH_K_MAX, rng=0)
    benchmark.pedantic(
        lambda: index.refresh(np.random.default_rng(1)), rounds=3, iterations=1
    )

    emit(
        format_table(
            f"Table 15: BFS Sharing index update cost per query "
            f"(K={BENCH_K_MAX}, scale={BENCH_SCALE})",
            ["Dataset", "Time cost (s/query)"],
            rows,
        )
        + "\n"
        + paper_note(
            "the paper charges 0.02s (lastFM) up to ~7s (BioMine) per query "
            "for re-sampling between 1000 successive queries."
        ),
        filename="table15_index_update.txt",
    )

    _JSON_PAYLOAD["refresh_per_query"] = per_dataset
    _write_json()

    # Shape assertion: update cost scales with graph size (largest dataset
    # costs more than the smallest).
    if {"lastfm", "biomine"} <= set(per_dataset):
        assert per_dataset["biomine"] > per_dataset["lastfm"]


def test_table15_live_update_path(benchmark):
    """`POST /v1/update` economics: incremental re-lift vs full rebuild.

    Probability-only updates let ProbTree re-lift just the bags covering
    the touched edges; this measures that against decomposing the mutated
    graph from scratch, asserts the two are bit-identical, and records
    the whole-service update latency (graph copy + estimator maintenance
    + cache-key rollover).
    """
    dataset = load_dataset("lastfm", BENCH_SCALE, BENCH_SEED)
    service = ReliabilityService(dataset.graph, seed=BENCH_SEED)
    incremental = service.estimator("prob_tree")
    service.estimator("bfs_sharing")

    source, target, probability = next(iter(service.graph.iter_edges()))
    edit = (int(source), int(target), round(1.0 - float(probability), 6))
    queries = coerce_query_specs(
        [[0, dataset.graph.node_count - 1, 300], [1, 2, 300]]
    )

    # Warm the result cache on version 0, then mutate: every key must
    # roll over to the new fingerprint (stale entries miss exactly).
    service.estimate_batch(BatchRequest(queries=queries))

    started = time.perf_counter()
    response = service.update(UpdateRequest(set_edges=(edit,)))
    update_seconds = time.perf_counter() - started

    after = service.estimate_batch(BatchRequest(queries=queries))
    stale_misses = after.engine.cache_misses

    fresh = service.create_estimator("prob_tree")
    started = time.perf_counter()
    fresh.ensure_prepared()
    rebuild_seconds = time.perf_counter() - started

    resolved = [(q.source, q.target, 200, q.max_hops) for q in queries]
    bit_identical = [
        float(x) for x in incremental.estimate_batch(resolved, seed=BENCH_SEED)
    ] == [float(x) for x in fresh.estimate_batch(resolved, seed=BENCH_SEED)]

    benchmark.pedantic(
        lambda: service.update(UpdateRequest(set_edges=(edit,))),
        rounds=3,
        iterations=1,
    )

    _JSON_PAYLOAD["live_update"] = {
        "dataset": "lastfm",
        "modes": dict(response.estimators),
        "pool": response.pool,
        "version": response.version,
        "update_seconds": update_seconds,
        "prob_tree_rebuild_seconds": rebuild_seconds,
        "stale_keys_missed": stale_misses,
        "bit_identical": bit_identical,
    }
    _write_json()

    emit(
        format_table(
            f"Table 15 (live path): service update vs ProbTree rebuild "
            f"(lastfm, scale={BENCH_SCALE})",
            ["Path", "Seconds"],
            [
                ["service.update (incremental re-lift)", f"{update_seconds:.4f}"],
                ["ProbTree rebuild from scratch", f"{rebuild_seconds:.4f}"],
            ],
        )
        + "\n"
        + paper_note(
            "the incremental path re-lifts only bags covering touched "
            "edges; answers are asserted bit-identical to the rebuild."
        ),
        filename="table15_index_update.txt",
    )

    assert response.estimators["prob_tree"] == "incremental"
    assert response.estimators["bfs_sharing"] == "dropped"
    assert stale_misses == len(queries)
    assert bit_identical
    service.close()
