"""Figure 17: sensitivity of RSS to the stratum count r.

Sweeps r at two sample sizes.  Shapes to verify (§3.10): variance decreases
with r, more visibly at the smaller (pre-convergence) K; running time is
not very sensitive to r.
"""

import numpy as np
import pytest

from repro.core.registry import create_estimator
from repro.datasets.queries import generate_workload
from repro.datasets.suite import load_dataset
from repro.experiments.convergence import evaluate_at_k
from repro.experiments.report import format_series

from benchmarks._shared import (
    BENCH_DATASETS,
    BENCH_SCALE,
    BENCH_SEED,
    emit,
    paper_note,
)

DATASET = "biomine"
STRATUM_COUNTS = (5, 10, 20, 50, 80, 100)
SAMPLE_SIZES = (500, 1_000)
PAIRS = 3
REPEATS = 5


def test_fig17_stratum_sensitivity(benchmark):
    if DATASET not in BENCH_DATASETS:
        pytest.skip(f"{DATASET} excluded via REPRO_BENCH_DATASETS")
    dataset = load_dataset(DATASET, BENCH_SCALE, BENCH_SEED)
    workload = generate_workload(
        dataset.graph, pair_count=PAIRS, hop_distance=2, seed=BENCH_SEED
    )

    variance_curves = {}
    time_curves = {}
    for samples in SAMPLE_SIZES:
        variance_curves[f"RSS K={samples}"] = []
        time_curves[f"RSS K={samples}"] = []
        for r in STRATUM_COUNTS:
            estimator = create_estimator(
                "rss", dataset.graph, stratum_edges=r, seed=BENCH_SEED
            )
            point = evaluate_at_k(estimator, workload, samples, REPEATS, BENCH_SEED)
            variance_curves[f"RSS K={samples}"].append(point.average_variance * 1e4)
            time_curves[f"RSS K={samples}"].append(point.seconds_per_query)

    benchmark.pedantic(
        lambda: create_estimator(
            "rss", dataset.graph, stratum_edges=50, seed=0
        ).estimate(*workload.pairs[0], 250, rng=np.random.default_rng(0)),
        rounds=3,
        iterations=1,
    )

    emit(
        format_series(
            f"Figure 17(a): RSS variance (x1e-4) vs #stratum r, {DATASET}",
            "r",
            list(STRATUM_COUNTS),
            variance_curves,
            value_format="{:.3f}",
        ),
        filename="fig17_stratum.txt",
    )
    emit(
        format_series(
            "Figure 17(b): RSS running time (s/query) vs #stratum r",
            "r",
            list(STRATUM_COUNTS),
            time_curves,
            value_format="{:.4f}",
        )
        + "\n"
        + paper_note(
            "variance decreases with r (strongest before convergence, "
            "~25% at r=50 for K=500); time is insensitive to r (§3.10)."
        ),
        filename="fig17_stratum.txt",
    )

    # Shape assertion: at the smaller K, large r does not increase variance
    # relative to the smallest r (trend is downward, allowing noise).
    small_k = variance_curves[f"RSS K={SAMPLE_SIZES[0]}"]
    assert small_k[-1] <= small_k[0] * 1.4, small_k
