"""Figures 9/10/11: relative error vs running time vs memory, per K.

For lastFM (Fig. 9), AS Topology (Fig. 10) and BioMine (Fig. 11), the paper
plots three panels against the sample size K: (a) relative error w.r.t. MC
at convergence, (b) total running time, (c) memory usage.  Shapes to
verify: error curves flatten at convergence; running time grows ~linearly
in K; memory is roughly K-insensitive for MC/ProbTree/LP+.
"""

import pytest

from repro.core.registry import display_name
from repro.experiments.metrics import relative_error
from repro.experiments.report import format_series

from benchmarks._shared import BENCH_DATASETS, emit, get_study, paper_note

FIGURES = {"lastfm": "Figure 9", "as_topology": "Figure 10", "biomine": "Figure 11"}


@pytest.mark.parametrize("dataset_key", list(FIGURES))
def test_fig09_11_tradeoff(benchmark, dataset_key):
    if dataset_key not in BENCH_DATASETS:
        pytest.skip(f"{dataset_key} excluded via REPRO_BENCH_DATASETS")
    study = get_study(dataset_key)
    benchmark.pedantic(lambda: study.accuracy_rows(), rounds=3, iterations=1)

    figure = FIGURES[dataset_key]
    x_values = [p.samples for p in next(iter(study.results.values())).points]

    error_curves = {}
    time_curves = {}
    memory_curves = {}
    for key, result in study.results.items():
        name = display_name(key)
        error_curves[name] = [
            100.0 * relative_error(p.per_pair_means, study.reference_per_pair)
            for p in result.points
        ]
        time_curves[name] = [p.seconds_per_query for p in result.points]
        memory_curves[name] = [p.memory_bytes / 2**20 for p in result.points]

    for suffix, curves, fmt in (
        ("(a) Relative Error (%)", error_curves, "{:.2f}"),
        ("(b) Running Time (s/query)", time_curves, "{:.4f}"),
        ("(c) Memory (MiB)", memory_curves, "{:.2f}"),
    ):
        emit(
            format_series(
                f"{figure} {suffix} - {dataset_key}", "K", x_values, curves, fmt
            ),
            filename="fig09_11_tradeoff.txt",
        )
    emit(
        paper_note(
            "running time grows ~linearly with K; relative errors converge "
            "below a few percent; memory is mostly K-insensitive (§3.3)."
        ),
        filename="fig09_11_tradeoff.txt",
    )

    # Shape assertion: per-sample estimators' time grows with K.  (BFS
    # Sharing's growth is the paper's complexity *correction* and shows at
    # real index sizes; at small scale its fixed worklist overhead can
    # flatten the curve, so it is reported in the table but not asserted.)
    for name in ("MC", "LP+"):
        times = time_curves[name]
        assert times[-1] > times[0] * 1.2, (name, times)
