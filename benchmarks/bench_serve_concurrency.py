"""Served concurrency: fine-grained locking vs the single-lock facade.

Not a paper table — this benchmarks the PR 5 serving-layer concurrency
work.  The paper frames s-t reliability as a *query workload* problem
(§2.2/§3.7), and the facade answers workloads over HTTP; until PR 5 a
single re-entrant lock serialised every request, so a
``ThreadingHTTPServer`` with N handler threads still ran one request at
a time — and the persistent cache paid one fsync per written row while
holding that lock.

Two sections, both over real sockets against in-process servers:

* ``served_throughput`` — 4 concurrent clients stream engine-backed
  ``/v1/batch`` workloads (fresh queries every round, so every request
  samples worlds and writes its rows through the persistent sidecar).
  The *baseline* server reconstructs PR 4 exactly: one global re-entrant
  lock around every request, per-row ``put`` commits, and one
  UPDATE+commit per disk hit.  The *concurrent* server is the shipped
  code: engine runs outside any lock, one batched transaction per
  request, deferred touch ticks.  On a single-core host the speedup is
  earned by eliminating serialised fsyncs and overlapping the ones that
  remain with other requests' compute (SQLite releases the GIL while it
  syncs); with more cores the unlocked engine runs overlap too.
* ``stats_tail_latency`` — ``/v1/stats`` sampled while the batch
  clients hammer.  Under the global lock a snapshot waits for whatever
  engine run holds it; lock-free counters answer in microseconds
  regardless of what else is in flight.
* ``pool_scaling`` — the PR 6 shared worker pool: one server per worker
  count (``REPRO_SERVE_POOL_WORKERS``, default ``1,2``), same clients;
  bit identity across counts is asserted unconditionally, the
  ``REPRO_SERVE_POOL_FLOOR`` scaling floor only on hosts with enough
  cores to show parallelism.

Asserted: bit-identical responses between both servers, and >= 1.5x
served throughput (the committed JSON records the measured figure; the
PR 5 acceptance floor is 2x on this workload).  Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_serve_concurrency.py -q -s

Environment knobs: ``REPRO_SERVE_CLIENTS`` (default 4),
``REPRO_SERVE_ROUNDS`` (default 6), ``REPRO_SERVE_QUERIES`` (default
64), ``REPRO_SERVE_K`` (default 100), ``REPRO_SERVE_SOURCES`` (default
4), ``REPRO_SERVE_SCALE`` (default small), and
``REPRO_SERVE_SPEEDUP_FLOOR`` (default 1.5; 0 records without
asserting).

Machine-readable results land in
``benchmarks/output/serve_concurrency.json`` (uploaded as a CI
artifact).
"""

import json
import os
import statistics
import tempfile
import threading
import time
import urllib.request

from repro.api import ReliabilityService
from repro.datasets.suite import load_dataset
from repro.serve import create_server

from benchmarks._shared import OUTPUT_DIRECTORY, emit

SERVE_SEED = 3
SERVE_SCALE = os.environ.get("REPRO_SERVE_SCALE", "small")
SERVE_DATASET = os.environ.get("REPRO_SERVE_DATASET", "lastfm")
SERVE_CLIENTS = int(os.environ.get("REPRO_SERVE_CLIENTS", "4"))
SERVE_ROUNDS = int(os.environ.get("REPRO_SERVE_ROUNDS", "6"))
SERVE_QUERIES = int(os.environ.get("REPRO_SERVE_QUERIES", "64"))
SERVE_K = int(os.environ.get("REPRO_SERVE_K", "100"))
SERVE_SOURCES = int(os.environ.get("REPRO_SERVE_SOURCES", "4"))
#: Hard floor asserted on the measured speedup; ``0`` records without
#: asserting (what CI uses — wall-clock ratios on shared runners flake,
#: while the bit-identity assertion is the real correctness gate).
SERVE_SPEEDUP_FLOOR = float(
    os.environ.get("REPRO_SERVE_SPEEDUP_FLOOR", "1.5")
)
#: Worker counts for the ``pool_scaling`` section; 1 is the serial
#: baseline and is always prepended.
POOL_WORKER_COUNTS = [
    int(part)
    for part in os.environ.get("REPRO_SERVE_POOL_WORKERS", "1,2").split(",")
    if part.strip()
] or [1, 2]
if POOL_WORKER_COUNTS[0] != 1:
    POOL_WORKER_COUNTS.insert(0, 1)
#: Scaling floor asserted at the largest worker count when the host has
#: at least that many cores; ``0`` records without asserting.
POOL_SPEEDUP_FLOOR = float(os.environ.get("REPRO_SERVE_POOL_FLOOR", "1.2"))

JSON_OUTPUT = OUTPUT_DIRECTORY / "serve_concurrency.json"

_JSON_PAYLOAD = {
    "dataset": SERVE_DATASET,
    "scale": SERVE_SCALE,
    "clients": SERVE_CLIENTS,
    "rounds": SERVE_ROUNDS,
    "queries_per_request": SERVE_QUERIES,
    "samples": SERVE_K,
    "cpu_count": os.cpu_count(),
}


def _write_json() -> None:
    OUTPUT_DIRECTORY.mkdir(exist_ok=True)
    JSON_OUTPUT.write_text(
        json.dumps(_JSON_PAYLOAD, indent=2) + "\n", encoding="utf-8"
    )


class SingleLockService(ReliabilityService):
    """PR 4's locking discipline, reconstructed as the baseline.

    One re-entrant lock serialises every request (that was
    ``self._lock`` around each method body), and the persistent cache
    is put back on its PR 4 write path: one commit per written row, one
    UPDATE+commit per disk hit.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._global_lock = threading.RLock()
        cache = self._cache
        cache.touch_flush_every = 1  # commit every disk-hit touch
        cache.put_many = lambda items: [  # commit every row
            cache.put(key, value) for key, value in items
        ]

    def estimate(self, request):
        with self._global_lock:
            return super().estimate(request)

    def estimate_batch(self, request):
        with self._global_lock:
            return super().estimate_batch(request)

    def warm(self, request):
        with self._global_lock:
            return super().warm(request)

    def stats(self):
        with self._global_lock:
            return super().stats()


def _post(url, path, body):
    request = urllib.request.Request(
        url + path,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=600) as response:
        return json.loads(response.read())


def _get(url, path):
    with urllib.request.urlopen(url + path, timeout=600) as response:
        return json.loads(response.read())


def _client_workload(node_count, client, round_number):
    """A fresh (never-cached) engine workload for one client round.

    Shaped like real served fan-out traffic — a handful of hot sources,
    many targets each (the top-k / reliable-set access pattern, §2.3):
    the bitset sweep answers all of one source's targets in one shared
    fixpoint, so the request is cheap to *compute* and the cache-write
    path (one row per query) is where a serialised server loses time.
    """
    base = (client * 7919 + round_number * 104729) % node_count
    queries = []
    for position in range(SERVE_QUERIES):
        source = (base + (position % SERVE_SOURCES) * 131) % node_count
        target = (base + 977 + position * 13) % node_count
        if source == target:
            target = (target + 1) % node_count
        queries.append([source, target, SERVE_K])
    return {"queries": queries, "method": "mc"}


def _drive(url, node_count, stats_samples):
    """4 concurrent clients x rounds; returns (seconds, responses)."""
    responses = [
        [None] * SERVE_ROUNDS for _ in range(SERVE_CLIENTS)
    ]
    errors = []
    barrier = threading.Barrier(SERVE_CLIENTS + 1)
    stop = threading.Event()

    def client(slot):
        barrier.wait(timeout=120)
        try:
            for round_number in range(SERVE_ROUNDS):
                body = _client_workload(node_count, slot, round_number)
                payload = _post(url, "/v1/batch", body)
                responses[slot][round_number] = [
                    row["estimate"] for row in payload["results"]
                ]
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    def stats_poller():
        # Samples /v1/stats latency while the batch traffic is live.
        while not stop.is_set():
            started = time.perf_counter()
            _get(url, "/v1/stats")
            stats_samples.append(time.perf_counter() - started)
            time.sleep(0.005)

    workers = [
        threading.Thread(target=client, args=(slot,))
        for slot in range(SERVE_CLIENTS)
    ]
    poller = threading.Thread(target=stats_poller, daemon=True)
    for worker in workers:
        worker.start()
    poller.start()
    barrier.wait(timeout=120)
    started = time.perf_counter()
    for worker in workers:
        worker.join()
    seconds = time.perf_counter() - started
    stop.set()
    poller.join(timeout=10)
    assert not errors, errors
    return seconds, responses


def _run_server(service):
    server = create_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def _shutdown(server, thread, service):
    server.shutdown()
    server.server_close()
    service.close()
    thread.join(timeout=10)


def test_served_concurrency_speedup():
    graph = load_dataset(SERVE_DATASET, SERVE_SCALE, SERVE_SEED).graph
    node_count = graph.node_count
    request_count = SERVE_CLIENTS * SERVE_ROUNDS

    runs = {}
    latencies = {}
    for label, factory in (
        ("single_lock_baseline", SingleLockService),
        ("fine_grained", ReliabilityService),
    ):
        with tempfile.TemporaryDirectory() as cache_dir:
            service = factory.from_dataset(
                SERVE_DATASET, SERVE_SCALE, seed=SERVE_SEED,
                cache_dir=cache_dir,
            )
            server, thread = _run_server(service)
            try:
                stats_samples = []
                seconds, responses = _drive(
                    server.url, node_count, stats_samples
                )
                runs[label] = (seconds, responses)
                latencies[label] = stats_samples
            finally:
                _shutdown(server, thread, service)

    base_seconds, base_responses = runs["single_lock_baseline"]
    fine_seconds, fine_responses = runs["fine_grained"]
    # Locking is invisible in the numbers: bit-identical either way.
    assert fine_responses == base_responses
    speedup = base_seconds / fine_seconds
    base_rps = request_count / base_seconds
    fine_rps = request_count / fine_seconds

    def tail(samples):
        if not samples:  # pragma: no cover - poller starved
            return {"p50_ms": None, "p95_ms": None, "samples": 0}
        ordered = sorted(samples)
        return {
            "p50_ms": round(statistics.median(ordered) * 1e3, 3),
            "p95_ms": round(
                ordered[min(len(ordered) - 1, int(len(ordered) * 0.95))]
                * 1e3,
                3,
            ),
            "samples": len(ordered),
        }

    _JSON_PAYLOAD["served_throughput"] = {
        "requests": request_count,
        "single_lock_baseline": {
            "seconds": round(base_seconds, 4),
            "requests_per_second": round(base_rps, 3),
        },
        "fine_grained": {
            "seconds": round(fine_seconds, 4),
            "requests_per_second": round(fine_rps, 3),
        },
        "speedup": round(speedup, 3),
        "bit_identical": True,
    }
    _JSON_PAYLOAD["stats_tail_latency"] = {
        "single_lock_baseline": tail(latencies["single_lock_baseline"]),
        "fine_grained": tail(latencies["fine_grained"]),
    }
    _write_json()

    base_p95 = _JSON_PAYLOAD["stats_tail_latency"]["single_lock_baseline"][
        "p95_ms"
    ]
    fine_p95 = _JSON_PAYLOAD["stats_tail_latency"]["fine_grained"]["p95_ms"]
    lines = [
        "served throughput: "
        f"{SERVE_CLIENTS} concurrent /v1/batch clients x {SERVE_ROUNDS} "
        f"rounds, {SERVE_QUERIES} queries/request, K={SERVE_K}, "
        f"{SERVE_DATASET}/{SERVE_SCALE}, persistent cache",
        f"  single-lock baseline : {base_seconds:8.3f} s  "
        f"({base_rps:6.2f} req/s)",
        f"  fine-grained locking : {fine_seconds:8.3f} s  "
        f"({fine_rps:6.2f} req/s)",
        f"  speedup              : {speedup:8.2f}x  (bit-identical)",
        "  /v1/stats under load : "
        f"baseline p95 {base_p95} ms -> fine-grained p95 {fine_p95} ms",
    ]
    emit("\n".join(lines), "serve_concurrency.txt")

    # The acceptance floor is 2x on the committed run; the default local
    # floor is a conservative 1.5x, and CI runs with the floor disabled
    # (bit-identity above is the gate there — see ci.yml).
    if SERVE_SPEEDUP_FLOOR > 0:
        assert speedup >= SERVE_SPEEDUP_FLOOR, (
            f"fine-grained serving only {speedup:.2f}x over the single "
            f"lock (floor {SERVE_SPEEDUP_FLOOR}x)"
        )


def test_pool_scaling():
    """Served throughput vs worker-pool size (the PR 6 tentpole).

    One server per worker count, each driven by the same concurrent
    batch clients.  ``workers=1`` runs every sweep in the handler
    thread; ``workers=N`` attaches the service's one shared
    :class:`~repro.engine.pool.WorkerPool`, pre-forked with the graph
    loaded, so requests dispatch ``(chunk_start, count)`` tasks instead
    of re-forking per request.  Bit identity across all worker counts is
    asserted unconditionally (the engine's determinism contract); the
    throughput *scaling* floor only when the host has the cores to show
    it — a single-core runner can demonstrate correctness, not
    parallelism.
    """
    graph = load_dataset(SERVE_DATASET, SERVE_SCALE, SERVE_SEED).graph
    node_count = graph.node_count
    request_count = SERVE_CLIENTS * SERVE_ROUNDS
    # Chunks small enough that one request fans out across the pool.
    chunk_size = max(1, SERVE_K // 4)

    reference = None
    rows = []
    serial_seconds = None
    for workers in POOL_WORKER_COUNTS:
        service = ReliabilityService.from_dataset(
            SERVE_DATASET, SERVE_SCALE, seed=SERVE_SEED,
            workers=workers, chunk_size=chunk_size,
        )
        server, thread = _run_server(service)
        try:
            seconds, responses = _drive(server.url, node_count, [])
            pool_stats = service.stats()["pool"]
        finally:
            _shutdown(server, thread, service)
        if reference is None:
            reference = responses
            serial_seconds = seconds
        else:
            # Worker count cannot change a bit of any response.
            assert responses == reference
            # The shared pool — not per-request forking — did the work.
            assert pool_stats is not None and pool_stats["runs"] > 0
        rows.append({
            "workers": workers,
            "seconds": round(seconds, 4),
            "requests_per_second": round(request_count / seconds, 3),
            "speedup_vs_serial": round(serial_seconds / seconds, 3),
            "pool_runs": None if pool_stats is None else pool_stats["runs"],
        })

    _JSON_PAYLOAD["pool_scaling"] = {
        "requests": request_count,
        "chunk_size": chunk_size,
        "rows": rows,
        "bit_identical": True,
    }
    _write_json()

    lines = [
        "worker-pool scaling: "
        f"{SERVE_CLIENTS} concurrent /v1/batch clients x {SERVE_ROUNDS} "
        f"rounds, {SERVE_QUERIES} queries/request, K={SERVE_K}, "
        f"chunk={chunk_size}, {SERVE_DATASET}/{SERVE_SCALE}, "
        f"{os.cpu_count()} core(s)",
    ] + [
        f"  workers={row['workers']:<2d}: {row['seconds']:8.3f} s "
        f"({row['requests_per_second']:6.2f} req/s, "
        f"{row['speedup_vs_serial']:.2f}x, bit-identical)"
        for row in rows
    ]
    emit("\n".join(lines), "serve_concurrency.txt")

    cores = os.cpu_count() or 1
    top = rows[-1]
    if POOL_SPEEDUP_FLOOR > 0 and cores >= top["workers"]:
        assert top["speedup_vs_serial"] >= POOL_SPEEDUP_FLOOR, (
            f"pooled serving only {top['speedup_vs_serial']:.2f}x at "
            f"{top['workers']} workers (floor {POOL_SPEEDUP_FLOOR}x)"
        )
