"""Figure 8: average reliability per estimator vs MC at very large K.

On BioMine, the paper compares each estimator's R_K against MC sampling at
K = 10 000 (dashed reference line), showing that the value at variance
convergence already matches the large-K reference.
"""

import numpy as np

from repro.core.registry import create_estimator, display_name
from repro.experiments.report import format_series
from repro.util.rng import stable_substream

from benchmarks._shared import (
    BENCH_DATASETS,
    BENCH_SCALE,
    BENCH_SEED,
    emit,
    get_study,
    paper_note,
)

DATASET = "biomine"
REFERENCE_SAMPLES = 10_000


def test_fig08_reliability_vs_reference(benchmark):
    if DATASET not in BENCH_DATASETS:
        import pytest

        pytest.skip(f"{DATASET} excluded via REPRO_BENCH_DATASETS")
    study = get_study(DATASET)

    # Large-K MC reference: one run per pair at K = 10 000.
    graph = study.dataset.graph
    mc = create_estimator("mc", graph, seed=BENCH_SEED)
    reference_values = []
    for pair_index, (source, target) in enumerate(study.workload):
        rng = stable_substream(BENCH_SEED, 9_999, pair_index)
        reference_values.append(
            mc.estimate(source, target, REFERENCE_SAMPLES, rng=rng)
        )
    reference = float(np.mean(reference_values))

    series = study.dispersion_series()
    x_values = [point["K"] for point in next(iter(series.values()))]
    curves = {
        display_name(key): [point["R_K"] for point in points]
        for key, points in series.items()
    }
    curves[f"MC@{REFERENCE_SAMPLES}"] = [reference] * len(x_values)

    benchmark.pedantic(
        lambda: mc.estimate(*study.workload.pairs[0], 250,
                            rng=np.random.default_rng(1)),
        rounds=3,
        iterations=1,
    )

    emit(
        format_series(
            f"Figure 8 ({DATASET}, scale={BENCH_SCALE}): average reliability "
            f"vs MC at K={REFERENCE_SAMPLES}",
            "K",
            x_values,
            curves,
            value_format="{:.4f}",
        )
        + "\n"
        + paper_note(
            "reliability at variance convergence is very close to the "
            "large-K reference (§3.2 (3))."
        ),
        filename="fig08_reliability_vs_k.txt",
    )

    # Shape assertion: every estimator's last grid point is near the
    # large-K MC reference.
    for key, points in series.items():
        final = points[-1]["R_K"]
        assert abs(final - reference) < max(0.05, 0.15 * reference), (
            key,
            final,
            reference,
        )
