"""Figure 5: reliability estimated by MC, LP, and LP+ at convergence.

The paper's correction experiment: the original Lazy Propagation (LP)
systematically overestimates reliability, while the corrected LP+ tracks
MC.  Reproduced on the DBLP and BioMine analogues.  Shape to verify:
``LP > MC ~ LP+``.
"""

import numpy as np

from repro.core.registry import create_estimator
from repro.datasets.queries import generate_workload
from repro.datasets.suite import load_dataset
from repro.experiments.report import format_table
from repro.util.rng import stable_substream

from benchmarks._shared import (
    BENCH_PAIRS,
    BENCH_SCALE,
    BENCH_SEED,
    emit,
    paper_note,
)

SAMPLES = 1_000
REPEATS = 3
DATASETS = ("dblp02", "biomine")
METHODS = ("mc", "lp", "lp_plus")


def _average_reliability(estimator, workload, seed):
    values = []
    for pair_index, (source, target) in enumerate(workload):
        for repeat in range(REPEATS):
            rng = stable_substream(seed, pair_index, repeat)
            values.append(estimator.estimate(source, target, SAMPLES, rng=rng))
    return float(np.mean(values))


def test_fig05_lp_overestimates(benchmark):
    rows = []
    averages = {}
    for dataset_key in DATASETS:
        dataset = load_dataset(dataset_key, BENCH_SCALE, BENCH_SEED)
        workload = generate_workload(
            dataset.graph, pair_count=BENCH_PAIRS, hop_distance=2, seed=BENCH_SEED
        )
        row = [dataset.title]
        for key in METHODS:
            estimator = create_estimator(key, dataset.graph, seed=BENCH_SEED)
            averages[(dataset_key, key)] = _average_reliability(
                estimator, workload, BENCH_SEED
            )
            row.append(f"{averages[(dataset_key, key)]:.4f}")
        rows.append(row)

    graph = load_dataset(DATASETS[0], BENCH_SCALE, BENCH_SEED).graph
    workload = generate_workload(graph, pair_count=1, hop_distance=2, seed=BENCH_SEED)
    source, target = workload.pairs[0]
    lp_plus = create_estimator("lp_plus", graph, seed=BENCH_SEED)
    benchmark.pedantic(
        lambda: lp_plus.estimate(source, target, 250, rng=np.random.default_rng(0)),
        rounds=3,
        iterations=1,
    )

    emit(
        format_table(
            f"Figure 5: Reliability by MC, LP, LP+ (K={SAMPLES}, scale={BENCH_SCALE})",
            ["Dataset", "MC", "LP", "LP+"],
            rows,
        )
        + "\n"
        + paper_note(
            "Fig. 5 reports LP well above MC (e.g. BioMine ~0.58 vs ~0.40) "
            "and LP+ close to MC."
        ),
        filename="fig05_lp_correction.txt",
    )

    # Shape assertions: the correction matters.
    for dataset_key in DATASETS:
        mc = averages[(dataset_key, "mc")]
        lp = averages[(dataset_key, "lp")]
        lp_plus_value = averages[(dataset_key, "lp_plus")]
        assert lp > mc, f"LP should overestimate on {dataset_key}"
        assert abs(lp_plus_value - mc) < abs(lp - mc), dataset_key
