"""Benchmark-suite configuration.

Replays every table/figure emitted during the run in the terminal summary,
so `pytest benchmarks/ --benchmark-only | tee log` archives the full set of
reproduced paper tables even though pytest captures per-test output.
"""


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    from benchmarks import _shared

    if not _shared.EMITTED:
        return
    terminalreporter.section("reproduced paper tables and figures")
    for chunk in _shared.EMITTED:
        for line in chunk.splitlines():
            terminalreporter.write_line(line)
        terminalreporter.write_line("")
