"""Figure 16: sensitivity of RHH/RSS to the recursion-stop threshold.

At fixed K, sweeps the sample-size threshold below which the recursive
estimators fall back to non-recursive MC.  Shapes to verify (§3.10): a
large threshold (~100) degrades variance toward plain MC; small thresholds
(~5) give the variance reduction, with diminishing returns below 5.
"""

import numpy as np
import pytest

from repro.core.registry import create_estimator
from repro.datasets.queries import generate_workload
from repro.datasets.suite import load_dataset
from repro.experiments.convergence import evaluate_at_k
from repro.experiments.report import format_series

from benchmarks._shared import (
    BENCH_DATASETS,
    BENCH_SCALE,
    BENCH_SEED,
    emit,
    paper_note,
)

DATASET = "biomine"
THRESHOLDS = (2, 5, 10, 20, 50, 100)
SAMPLES = 1_000
PAIRS = 3
REPEATS = 5


def test_fig16_threshold_sensitivity(benchmark):
    if DATASET not in BENCH_DATASETS:
        pytest.skip(f"{DATASET} excluded via REPRO_BENCH_DATASETS")
    dataset = load_dataset(DATASET, BENCH_SCALE, BENCH_SEED)
    workload = generate_workload(
        dataset.graph, pair_count=PAIRS, hop_distance=2, seed=BENCH_SEED
    )

    variance_curves = {"RHH": [], "RSS": []}
    time_curves = {"RHH": [], "RSS": []}
    mc_estimator = create_estimator("mc", dataset.graph, seed=BENCH_SEED)
    mc_point = evaluate_at_k(mc_estimator, workload, SAMPLES, REPEATS, BENCH_SEED)

    for threshold in THRESHOLDS:
        for key, name in (("rhh", "RHH"), ("rss", "RSS")):
            estimator = create_estimator(
                key, dataset.graph, threshold=threshold, seed=BENCH_SEED
            )
            point = evaluate_at_k(estimator, workload, SAMPLES, REPEATS, BENCH_SEED)
            variance_curves[name].append(point.average_variance * 1e4)
            time_curves[name].append(point.seconds_per_query)

    benchmark.pedantic(
        lambda: create_estimator(
            "rhh", dataset.graph, threshold=5, seed=0
        ).estimate(*workload.pairs[0], 250, rng=np.random.default_rng(0)),
        rounds=3,
        iterations=1,
    )

    reference = {
        "MC (reference)": [mc_point.average_variance * 1e4] * len(THRESHOLDS)
    }
    emit(
        format_series(
            f"Figure 16(a): variance (x1e-4) vs threshold, K={SAMPLES}, {DATASET}",
            "threshold",
            list(THRESHOLDS),
            {**variance_curves, **reference},
            value_format="{:.3f}",
        ),
        filename="fig16_threshold.txt",
    )
    emit(
        format_series(
            f"Figure 16(b): running time (s/query) vs threshold, K={SAMPLES}",
            "threshold",
            list(THRESHOLDS),
            {
                **time_curves,
                "MC (reference)": [mc_point.seconds_per_query] * len(THRESHOLDS),
            },
            value_format="{:.4f}",
        )
        + "\n"
        + paper_note(
            "threshold ~100 degrades recursive variance toward MC; both "
            "papers' methods settle at threshold 5 (§3.10)."
        ),
        filename="fig16_threshold.txt",
    )

    # Shape assertion: at small thresholds the recursive methods do not
    # exceed the MC reference variance (the figure's load-bearing claim:
    # recursion helps; threshold ~100 merely degrades *toward* MC).  The
    # within-curve small-vs-large comparison is printed but not asserted —
    # sample variances of variances are too noisy at benchmark repeats.
    mc_reference = mc_point.average_variance * 1e4
    for name in ("RHH", "RSS"):
        small = float(np.mean(variance_curves[name][:2]))
        assert small <= mc_reference * 1.3, (name, small, mc_reference)
