"""Figure 12: online memory usage per estimator and dataset.

The paper's finding (§3.6): MC < LP+ < ProbTree < BFS Sharing < RHH ~= RSS.
Two measurements are reported: the estimator's structural working set (as
in the study) and a tracemalloc peak of one live query.
"""

import numpy as np
import pytest

from repro.core.registry import display_name
from repro.experiments.memory import format_bytes, traced_peak_bytes
from repro.experiments.report import format_table
from repro.experiments.runner import build_estimator

from benchmarks._shared import (
    BENCH_DATASETS,
    emit,
    get_study,
    paper_note,
)


@pytest.mark.parametrize("dataset_key", BENCH_DATASETS)
def test_fig12_memory_usage(benchmark, dataset_key):
    study = get_study(dataset_key)
    rows = []
    structural = {}
    for key in study.config.estimators:
        point = study.results[key].convergence_point
        structural[key] = point.memory_bytes

        estimator = build_estimator(study.config, key, study.dataset.graph)
        estimator.prepare()
        source, target = study.workload.pairs[0]
        samples = point.samples
        _, peak = traced_peak_bytes(
            lambda: estimator.estimate(
                source, target, samples, rng=np.random.default_rng(0)
            )
        )
        rows.append(
            [
                display_name(key),
                format_bytes(structural[key]),
                format_bytes(peak),
            ]
        )

    benchmark.pedantic(
        lambda: traced_peak_bytes(lambda: np.zeros(1000)), rounds=3, iterations=1
    )

    emit(
        format_table(
            f"Figure 12 ({dataset_key}): online memory usage at convergence",
            ["Estimator", "Working set", "tracemalloc peak (1 query)"],
            rows,
        )
        + "\n"
        + paper_note("order: MC < LP+ < ProbTree < BFSSharing < RHH ~ RSS (§3.6)."),
        filename="fig12_memory.txt",
    )

    # Shape assertions on the structural ordering the paper reports.
    assert structural["mc"] <= structural["lp_plus"]
    assert structural["mc"] < structural["bfs_sharing"]
