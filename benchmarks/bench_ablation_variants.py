"""Ablations of this reproduction's own design choices (DESIGN.md §6).

Not a paper table — these quantify implementation decisions the paper's
C++ substrate never had to make, so EXPERIMENTS.md can justify them:

* LP+ engines: the literal per-edge heap (Alg. 6's data structure) vs the
  vectorised per-level array schedule (identical semantics).
* ProbTree couplings beyond the paper's three (every registered estimator
  on the query graph).
* Estimator accuracy sanity at a fixed budget against exact bounds.
"""

import time

import numpy as np

from repro.core.bounds import reliability_bounds
from repro.core.estimators.lazy_propagation import LazyPropagationEstimator
from repro.core.registry import PAPER_ESTIMATORS, create_estimator, display_name
from repro.datasets.queries import generate_workload
from repro.datasets.suite import load_dataset
from repro.experiments.report import format_table
from repro.util.rng import stable_substream

from benchmarks._shared import (
    BENCH_DATASETS,
    BENCH_SCALE,
    BENCH_SEED,
    emit,
)

SAMPLES = 500
RUNS = 3


def test_ablation_lp_engines(benchmark):
    dataset_key = "dblp02" if "dblp02" in BENCH_DATASETS else BENCH_DATASETS[0]
    dataset = load_dataset(dataset_key, BENCH_SCALE, BENCH_SEED)
    workload = generate_workload(
        dataset.graph, pair_count=3, hop_distance=2, seed=BENCH_SEED
    )
    rows = []
    times = {}
    for engine in ("array", "heap"):
        estimator = LazyPropagationEstimator(
            dataset.graph, engine=engine, seed=BENCH_SEED
        )
        values = []
        started = time.perf_counter()
        for pair_index, (source, target) in enumerate(workload):
            for run in range(RUNS):
                rng = stable_substream(BENCH_SEED, pair_index, run)
                values.append(
                    estimator.estimate(source, target, SAMPLES, rng=rng)
                )
        elapsed = (time.perf_counter() - started) / (len(workload) * RUNS)
        times[engine] = elapsed
        rows.append(
            [engine, f"{np.mean(values):.4f}", f"{elapsed:.4f}"]
        )

    estimator = LazyPropagationEstimator(dataset.graph, engine="array", seed=0)
    source, target = workload.pairs[0]
    benchmark.pedantic(
        lambda: estimator.estimate(source, target, 250, rng=np.random.default_rng(0)),
        rounds=3,
        iterations=1,
    )

    emit(
        format_table(
            f"Ablation: LP+ engines on {dataset_key} (K={SAMPLES})",
            ["engine", "mean estimate", "s/query"],
            rows,
        ),
        filename="ablation_variants.txt",
    )
    # Same estimand, and the vectorised engine must not be slower.
    estimates = {row[0]: float(row[1]) for row in rows}
    assert abs(estimates["array"] - estimates["heap"]) < 0.08
    assert times["array"] <= times["heap"] * 1.5


def test_ablation_probtree_couplings(benchmark):
    dataset_key = "lastfm" if "lastfm" in BENCH_DATASETS else BENCH_DATASETS[0]
    dataset = load_dataset(dataset_key, BENCH_SCALE, BENCH_SEED)
    workload = generate_workload(
        dataset.graph, pair_count=3, hop_distance=2, seed=BENCH_SEED
    )
    rows = []
    values_by_inner = {}
    for inner_key in PAPER_ESTIMATORS:
        if inner_key == "prob_tree":
            continue  # no self-nesting
        def factory(g, k=inner_key):
            return create_estimator(k, g, seed=BENCH_SEED)

        coupled = create_estimator(
            "prob_tree", dataset.graph, estimator_factory=factory, seed=BENCH_SEED
        )
        coupled.prepare()
        values = []
        started = time.perf_counter()
        for pair_index, (source, target) in enumerate(workload):
            rng = stable_substream(BENCH_SEED, pair_index, 0)
            values.append(coupled.estimate(source, target, SAMPLES, rng=rng))
        elapsed = (time.perf_counter() - started) / len(workload)
        values_by_inner[inner_key] = float(np.mean(values))
        rows.append(
            [
                f"ProbTree+{display_name(inner_key)}",
                f"{np.mean(values):.4f}",
                f"{elapsed:.4f}",
            ]
        )

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit(
        format_table(
            f"Ablation: ProbTree coupled with every estimator ({dataset_key})",
            ["configuration", "mean estimate", "s/query"],
            rows,
        ),
        filename="ablation_variants.txt",
    )
    spread = max(values_by_inner.values()) - min(values_by_inner.values())
    assert spread < 0.08, values_by_inner


def test_ablation_estimates_within_bounds(benchmark):
    """Every estimator's answer sits inside the polynomial-time bracket."""
    dataset = load_dataset("lastfm", "tiny", BENCH_SEED)
    workload = generate_workload(
        dataset.graph, pair_count=3, hop_distance=2, seed=BENCH_SEED
    )
    rows = []
    for source, target in workload:
        lower, upper = reliability_bounds(dataset.graph, source, target)
        for key in PAPER_ESTIMATORS:
            estimator = create_estimator(key, dataset.graph, seed=BENCH_SEED)
            value = estimator.estimate(
                source, target, 2_000, rng=stable_substream(BENCH_SEED, source)
            )
            slack = 3 * np.sqrt(max(value * (1 - value), 1e-4) / 2_000)
            assert lower - slack <= value <= upper + slack, (
                key, (source, target), lower, value, upper,
            )
        rows.append([f"({source}, {target})", f"{lower:.4f}", f"{upper:.4f}"])

    benchmark.pedantic(
        lambda: reliability_bounds(dataset.graph, *workload.pairs[0]),
        rounds=3,
        iterations=1,
    )
    emit(
        format_table(
            "Ablation: polynomial-time brackets on lastFM (tiny)",
            ["pair", "lower (best path)", "upper (min cut)"],
            rows,
        ),
        filename="ablation_variants.txt",
    )
