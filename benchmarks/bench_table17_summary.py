"""Table 17 + Figure 18: the summary star ratings and the decision tree.

Prints the paper's recommendation table, a measured ranking derived from
the studies actually run in this session, and the decision-tree walks of
Fig. 18.  Shape to verify: the measured variance/memory orderings agree
with the paper's star ordering (recursive best variance, MC best memory).
"""

import numpy as np

from repro.core.recommend import (
    INDEX_STAR_RATINGS,
    STAR_RATINGS,
    overall_recommendation,
    recommend_estimator,
)
from repro.core.registry import PAPER_ESTIMATORS, display_name
from repro.experiments.report import format_table, stars

from benchmarks._shared import BENCH_DATASETS, emit, get_study, paper_note


def test_table17_summary_and_fig18_decision_tree(benchmark):
    benchmark.pedantic(
        lambda: recommend_estimator(memory_limited=True), rounds=3, iterations=1
    )

    # --- Table 17, paper's ratings --------------------------------------
    rating_rows = [
        [
            display_name(key),
            stars(STAR_RATINGS[key]["variance"]),
            stars(STAR_RATINGS[key]["accuracy"]),
            stars(STAR_RATINGS[key]["running_time"]),
            stars(STAR_RATINGS[key]["memory"]),
        ]
        for key in PAPER_ESTIMATORS
    ]
    emit(
        format_table(
            "Table 17 (paper): online query processing recommendation levels",
            ["Method", "Variance", "Accuracy", "Running Time", "Memory"],
            rating_rows,
        ),
        filename="table17_summary.txt",
    )
    index_rows = [
        [
            display_name(key),
            stars(INDEX_STAR_RATINGS[key]["build_time"]),
            stars(INDEX_STAR_RATINGS[key]["load_time"]),
            stars(INDEX_STAR_RATINGS[key]["update_time"]),
            stars(INDEX_STAR_RATINGS[key]["size"]),
        ]
        for key in INDEX_STAR_RATINGS
    ]
    emit(
        format_table(
            "Table 17 (paper): index-related recommendation levels",
            ["Method", "Time (build)", "Time (load)", "Time (update)", "Size"],
            index_rows,
        ),
        filename="table17_summary.txt",
    )

    # --- Measured rankings from this session's studies -------------------
    measured_datasets = [k for k in ("lastfm", "biomine") if k in BENCH_DATASETS]
    if measured_datasets:
        # Variance must be compared at a *common* K (the paper's Fig. 7
        # view): at each estimator's own convergence point the dispersion
        # criterion has equalised the variances by construction.
        variance_rank = {key: 0.0 for key in PAPER_ESTIMATORS}
        memory_rank = {key: 0.0 for key in PAPER_ESTIMATORS}
        time_rank = {key: 0.0 for key in PAPER_ESTIMATORS}
        for dataset_key in measured_datasets:
            study = get_study(dataset_key)
            common_k = study.config.criterion.k_start
            for key in PAPER_ESTIMATORS:
                result = study.results[key]
                first = result.point_at(common_k) or result.points[0]
                converged = result.convergence_point
                variance_rank[key] += first.average_variance
                memory_rank[key] += converged.memory_bytes
                time_rank[key] += converged.seconds_per_query

        def ordering(metric):
            return " < ".join(
                display_name(k) for k in sorted(metric, key=metric.get)
            )

        emit(
            format_table(
                "Measured orderings (lower is better), averaged over "
                + ", ".join(measured_datasets),
                ["Metric", "Ordering"],
                [
                    ["Variance@K=250", ordering(variance_rank)],
                    ["Time@conv", ordering(time_rank)],
                    ["Memory@conv", ordering(memory_rank)],
                ],
            )
            + "\n"
            + paper_note(
                "paper: variance RSS~RHH << others; memory MC < LP+ < "
                "ProbTree < BFSSharing < RHH~RSS; no single winner overall."
            ),
            filename="table17_summary.txt",
        )

        # Shape assertions against the paper's headline orderings.
        recursive_variance = np.mean(
            [variance_rank["rhh"], variance_rank["rss"]]
        )
        mc_family_variance = np.mean(
            [
                variance_rank["mc"],
                variance_rank["bfs_sharing"],
                variance_rank["lp_plus"],
            ]
        )
        assert recursive_variance <= mc_family_variance * 1.1
        assert memory_rank["mc"] <= min(
            memory_rank["bfs_sharing"], memory_rank["rss"]
        )

    # --- Figure 18: decision-tree walks ----------------------------------
    walks = [
        recommend_estimator(memory_limited=True, want_fastest=True),
        recommend_estimator(memory_limited=True, want_fastest=False),
        recommend_estimator(memory_limited=False, want_lowest_variance=True),
        recommend_estimator(memory_limited=False),
    ]
    emit(
        format_table(
            "Figure 18: decision tree for estimator selection",
            ["Branch decisions", "Recommended"],
            [
                [" -> ".join(walk.path), ", ".join(
                    display_name(k) for k in walk.estimators
                )]
                for walk in walks
            ],
        )
        + "\n"
        + paper_note(
            f"overall recommendation: {display_name(overall_recommendation())} "
            "(its Fig. 18 root-to-leaf path is all red ticks)."
        ),
        filename="table17_summary.txt",
    )
