"""The distributed shard tier: exact merges, scaling shape, failover.

Not a paper table — this benchmarks the shard-tier work (coordinator +
workers behind one front door).  The paper's determinism contract is
what makes the tier *benchmarkable at all*: world ``i`` is a pure
function of ``(graph fingerprint, seed, i)``, so every configuration
below must produce bit-identical estimates, and the interesting numbers
are wall-clock and bookkeeping, never accuracy.

Three sections, the last two over real sockets against in-process
servers:

* ``merge_exactness`` — the engine-level heart of the tier:
  ``run_range`` over a chunk-aligned partition, hit counts summed,
  asserted bit-identical to one process sweeping the full range —
  including the merged ``sweeps`` counter;
* ``shard_scaling`` — one coordinator in front of 1 and 2 real HTTP
  workers answering the same engine workload; each row records
  wall-clock and the bit-identity verdict against a plain
  single-process service (on one host the sharded run mostly measures
  HTTP overhead; across real machines the same partition fans real
  compute out);
* ``failover`` — one of two workers is shut down, the next batch must
  re-dispatch the dead worker's range and stay bit-identical; the row
  records the coordinator's ``redispatches`` counter and the downed
  member's bookkeeping.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_distributed_shards.py -q -s

Environment knobs: ``REPRO_DIST_SCALE`` (default tiny),
``REPRO_DIST_QUERIES`` (default 12), ``REPRO_DIST_K`` (default 600).
Machine-readable results land in
``benchmarks/output/distributed_shards.json`` (uploaded as a CI
artifact).
"""

import json
import os
import threading
import time

import numpy as np

from repro.api import BatchRequest, QuerySpec, ReliabilityService
from repro.datasets.suite import load_dataset
from repro.distributed import (
    CoordinatedReliabilityService,
    ShardTierConfig,
    partition_ranges,
)
from repro.engine.batch import BatchEngine
from repro.serve import create_server

from benchmarks._shared import OUTPUT_DIRECTORY, emit

DIST_SEED = 3
DIST_DATASET = os.environ.get("REPRO_DIST_DATASET", "lastfm")
DIST_SCALE = os.environ.get("REPRO_DIST_SCALE", "tiny")
DIST_QUERIES = int(os.environ.get("REPRO_DIST_QUERIES", "12"))
DIST_K = int(os.environ.get("REPRO_DIST_K", "600"))

JSON_OUTPUT = OUTPUT_DIRECTORY / "distributed_shards.json"

_JSON_PAYLOAD = {
    "dataset": DIST_DATASET,
    "scale": DIST_SCALE,
    "queries": DIST_QUERIES,
    "samples": DIST_K,
    "seed": DIST_SEED,
    "cpu_count": os.cpu_count(),
}

#: No same-shard retries, no backoff: failover timing below measures
#: re-dispatch, not sleeping.
TIER_CONFIG = ShardTierConfig(
    timeout=60.0, retries=0, backoff=0.0, cooldown=600.0, local_fallback=True
)


def _write_json() -> None:
    OUTPUT_DIRECTORY.mkdir(exist_ok=True)
    JSON_OUTPUT.write_text(
        json.dumps(_JSON_PAYLOAD, indent=2) + "\n", encoding="utf-8"
    )


def _workload(node_count, salt=0):
    """A deterministic engine workload with a shared sample budget."""
    queries = []
    for position in range(DIST_QUERIES):
        source = (salt * 7919 + position * 131) % node_count
        target = (salt * 977 + 7 + position * 13) % node_count
        if source == target:
            target = (target + 1) % node_count
        queries.append(QuerySpec(source, target, DIST_K))
    return BatchRequest(queries=tuple(queries), samples=DIST_K)


def _start_worker():
    service = ReliabilityService.from_dataset(
        DIST_DATASET, DIST_SCALE, seed=DIST_SEED
    )
    server = create_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return service, server, thread


def _stop_worker(worker):
    service, server, thread = worker
    server.shutdown()
    server.server_close()
    service.close()
    thread.join(timeout=10)


def _coordinator(shard_urls):
    loaded = load_dataset(DIST_DATASET, DIST_SCALE, DIST_SEED)
    return CoordinatedReliabilityService(
        loaded.graph,
        seed=DIST_SEED,
        dataset=loaded,
        shards=shard_urls,
        shard_config=TIER_CONFIG,
    )


def _reference_rows(request):
    with ReliabilityService.from_dataset(
        DIST_DATASET, DIST_SCALE, seed=DIST_SEED
    ) as plain:
        response = plain.estimate_batch(request)
    return [row.estimate for row in response.results], response.engine


def test_merge_exactness():
    graph = load_dataset(DIST_DATASET, DIST_SCALE, DIST_SEED).graph
    workload = [
        (q.source, q.target, q.samples)
        for q in _workload(graph.node_count).queries
    ]
    engine = BatchEngine(graph, seed=DIST_SEED)
    full = engine.run(workload)

    ranges = partition_ranges(DIST_K, engine.chunk_size, 3)
    merged_hits = np.zeros(len(workload), dtype=np.int64)
    merged_sweeps = 0
    for start, stop in ranges:
        part = BatchEngine(graph, seed=DIST_SEED).run_range(
            workload, start, stop
        )
        merged_hits += part.hits
        merged_sweeps += part.sweeps
    merged_estimates = merged_hits / np.asarray(
        [k for _, _, k in workload], dtype=np.int64
    )

    bit_identical = bool(
        np.array_equal(merged_estimates, np.asarray(full.estimates))
    )
    section = {
        "ranges": [[start, stop] for start, stop in ranges],
        "chunk_size": engine.chunk_size,
        "worlds": DIST_K,
        "bit_identical": bit_identical,
        "sweeps_full_run": int(full.sweeps),
        "sweeps_merged": int(merged_sweeps),
    }
    _JSON_PAYLOAD["merge_exactness"] = section
    _write_json()
    emit(
        "merge_exactness: {} ranges over [0, {}), bit_identical={}, "
        "sweeps {} == {}".format(
            len(ranges), DIST_K, bit_identical,
            full.sweeps, merged_sweeps,
        ),
        "distributed_shards.txt",
    )
    assert bit_identical
    assert merged_sweeps == full.sweeps


def test_shard_scaling():
    request = _workload(
        load_dataset(DIST_DATASET, DIST_SCALE, DIST_SEED).graph.node_count,
        salt=1,
    )
    expected, reference_engine = _reference_rows(request)

    rows = []
    all_identical = True
    for shard_count in (1, 2):
        workers = [_start_worker() for _ in range(shard_count)]
        coordinator = _coordinator([w[1].url for w in workers])
        try:
            started = time.perf_counter()
            response = coordinator.estimate_batch(request)
            seconds = time.perf_counter() - started
            got = [row.estimate for row in response.results]
            identical = got == expected
            all_identical = all_identical and identical
            stats = coordinator.stats()["shards"]
            rows.append(
                {
                    "shards": shard_count,
                    "seconds": round(seconds, 4),
                    "ranges_dispatched": stats["ranges_dispatched"],
                    "contributing_hosts": response.engine.workers,
                    "worlds_sampled": response.engine.worlds_sampled,
                    "sweeps": response.engine.sweeps,
                    "bit_identical": identical,
                }
            )
        finally:
            coordinator.close()
            for worker in workers:
                _stop_worker(worker)

    section = {
        "reference_sweeps": reference_engine.sweeps,
        "rows": rows,
        "bit_identical": all_identical,
    }
    _JSON_PAYLOAD["shard_scaling"] = section
    _write_json()
    for row in rows:
        emit(
            "shard_scaling: {shards} shard(s) -> {seconds}s, "
            "{ranges_dispatched} range(s), bit_identical={bit_identical}"
            .format(**row),
            "distributed_shards.txt",
        )
    assert all_identical
    assert all(row["sweeps"] == reference_engine.sweeps for row in rows)


def test_failover():
    request = _workload(
        load_dataset(DIST_DATASET, DIST_SCALE, DIST_SEED).graph.node_count,
        salt=2,
    )
    expected, _ = _reference_rows(request)

    workers = [_start_worker(), _start_worker()]
    coordinator = _coordinator([w[1].url for w in workers])
    try:
        # Kill one worker, then answer a cold workload: its range must
        # be re-dispatched to the survivor with no loss of exactness.
        _stop_worker(workers.pop(0))
        started = time.perf_counter()
        response = coordinator.estimate_batch(request)
        seconds = time.perf_counter() - started
        got = [row.estimate for row in response.results]
        identical = got == expected
        stats = coordinator.stats()["shards"]
        downed = [m for m in stats["members"] if not m["healthy"]]
        section = {
            "seconds": round(seconds, 4),
            "bit_identical": identical,
            "redispatches": stats["redispatches"],
            "healthy_after": stats["healthy"],
            "downed_member_failures": downed[0]["failures"] if downed else 0,
        }
        _JSON_PAYLOAD["failover"] = section
        _write_json()
        emit(
            "failover: 1 of 2 workers killed -> {seconds}s, "
            "redispatches={redispatches}, bit_identical={bit_identical}"
            .format(**section),
            "distributed_shards.txt",
        )
        assert identical
        assert stats["redispatches"] >= 1
        assert stats["healthy"] == 1
    finally:
        coordinator.close()
        for worker in workers:
            _stop_worker(worker)
